//! Simulation counters and derived ratios.

/// Counters accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Packets handed to the network layer.
    pub generated: u64,
    /// Packets that reached their final destination.
    pub delivered: u64,
    /// Packets dropped: no route at creation time.
    pub dropped_no_route: u64,
    /// Packets dropped by the MAC after exhausting retries.
    pub dropped_retries: u64,
    /// Frame transmissions attempted (one per node per slot at most).
    pub transmissions: u64,
    /// Transmissions whose intended receiver did not decode the frame.
    pub collisions: u64,
    /// Total transmission energy `Σ r_u^α` over all transmissions.
    pub energy: f64,
    /// Sum of end-to-end delays (slots) of delivered packets.
    pub total_delay: u64,
    /// Sum of hop counts of delivered packets.
    pub total_hops: u64,
    /// Per *receiver*: frames addressed to it that were destroyed by a
    /// concurrent transmission (indexed by node).
    pub collisions_at: Vec<u64>,
    /// Per receiver: frames addressed to it that were decoded.
    pub received_at: Vec<u64>,
}

impl Metrics {
    /// Fraction of generated packets delivered (1.0 when nothing was
    /// generated).
    pub fn delivery_ratio(&self) -> f64 {
        if self.generated == 0 {
            1.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Fraction of transmissions that collided (0.0 when silent).
    pub fn collision_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.collisions as f64 / self.transmissions as f64
        }
    }

    /// Mean end-to-end delay of delivered packets in slots.
    pub fn mean_delay(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.total_delay as f64 / self.delivered as f64
        }
    }

    /// Mean transmissions spent per delivered packet — the retransmission
    /// overhead the paper's introduction talks about.
    pub fn transmissions_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            self.transmissions as f64
        } else {
            self.transmissions as f64 / self.delivered as f64
        }
    }

    /// Energy per delivered packet.
    pub fn energy_per_delivery(&self) -> f64 {
        if self.delivered == 0 {
            self.energy
        } else {
            self.energy / self.delivered as f64
        }
    }

    /// Per-node collision rate at the receiver side:
    /// `collisions_at[v] / (collisions_at[v] + received_at[v])`
    /// (`None` for nodes that were never addressed).
    pub fn node_collision_rate(&self, v: usize) -> Option<f64> {
        let total = self.collisions_at[v] + self.received_at[v];
        (total > 0).then(|| self.collisions_at[v] as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_on_empty_run_are_neutral() {
        let m = Metrics::default();
        assert_eq!(m.delivery_ratio(), 1.0);
        assert_eq!(m.collision_rate(), 0.0);
        assert_eq!(m.mean_delay(), 0.0);
    }

    #[test]
    fn derived_ratios() {
        let m = Metrics {
            generated: 10,
            delivered: 8,
            transmissions: 40,
            collisions: 10,
            energy: 80.0,
            total_delay: 64,
            total_hops: 24,
            ..Metrics::default()
        };
        assert!((m.delivery_ratio() - 0.8).abs() < 1e-12);
        assert!((m.collision_rate() - 0.25).abs() < 1e-12);
        assert!((m.mean_delay() - 8.0).abs() < 1e-12);
        assert!((m.transmissions_per_delivery() - 5.0).abs() < 1e-12);
        assert!((m.energy_per_delivery() - 10.0).abs() < 1e-12);
    }
}
