//! `rim-sim` — a packet-level wireless MAC simulator whose reception rule
//! is exactly the paper's interference model.
//!
//! The introduction of von Rickenbach et al. (IPDPS 2005) motivates
//! interference reduction physically: fewer overlapping transmission
//! disks mean fewer collisions, fewer retransmissions, and less energy.
//! This crate substantiates that chain on synthetic traffic:
//!
//! * a frame sent by `u` occupies the disk `D(u, r_u)` for one slot;
//! * reception at `v` fails iff some *other* node whose disk covers `v`
//!   transmits in the same slot (or `v` itself transmits — half duplex);
//! * so the number of nodes that can destroy a reception at `v` is
//!   exactly the paper's `I(v)`.
//!
//! The simulator is slot-synchronous (every slot, every node makes a MAC
//! decision) with an event queue feeding traffic arrivals. Two MAC
//! disciplines are provided: `p`-persistent slotted ALOHA and CSMA with
//! binary exponential backoff. Routing is static shortest-path next-hop
//! over the controlled topology.
//!
//! Module map: [`event`] (time-ordered arrival queue), [`phy`] (coverage
//! precomputation), [`mac`] (disciplines + per-node state), [`traffic`]
//! (CBR / Poisson flows), [`metrics`] (counters and derived ratios),
//! [`sim`] (the slot loop), [`schedule`] (conflict-free TDMA link
//! scheduling — how much parallelism a topology admits).

#![forbid(unsafe_code)]

// Node ids double as indices throughout this workspace; indexed loops
// over `0..n` mirror the paper's notation and often touch several arrays.
#![allow(clippy::needless_range_loop)]

pub mod event;
pub mod mac;
pub mod metrics;
pub mod phy;
pub mod schedule;
pub mod sim;
pub mod traffic;

pub use mac::MacConfig;
pub use metrics::Metrics;
pub use schedule::{tdma_schedule, LinkSchedule};
pub use sim::{SimConfig, Simulator};
pub use traffic::TrafficConfig;
