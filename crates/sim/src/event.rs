//! A deterministic time-ordered event queue.
//!
//! Events carry a slot timestamp and an arbitrary payload; ties are
//! resolved by insertion order (FIFO among equal timestamps), which keeps
//! simulation runs bit-reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of `(slot, payload)` events.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<(u64, u64, Entry<T>)>>,
    seq: u64,
}

/// Wrapper making the payload inert for ordering purposes.
#[derive(Debug, Clone)]
struct Entry<T>(T);

impl<T> PartialEq for Entry<T> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `slot`.
    pub fn push(&mut self, slot: u64, payload: T) {
        self.heap.push(Reverse((slot, self.seq, Entry(payload))));
        self.seq += 1;
    }

    /// Pops the next event if its slot is at most `now`.
    pub fn pop_due(&mut self, now: u64) -> Option<(u64, T)> {
        if self
            .heap
            .peek()
            .is_some_and(|Reverse((slot, _, _))| *slot <= now)
        {
            // rim-lint: allow(no-unwrap-in-lib) — peek() checked Some above
            let Reverse((slot, _, Entry(payload))) = self.heap.pop().unwrap();
            Some((slot, payload))
        } else {
            None
        }
    }

    /// Timestamp of the next event, if any.
    pub fn next_slot(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((slot, _, _))| *slot)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(5, "c");
        q.push(1, "a");
        q.push(3, "b");
        assert_eq!(q.next_slot(), Some(1));
        assert_eq!(q.pop_due(10), Some((1, "a")));
        assert_eq!(q.pop_due(10), Some((3, "b")));
        assert_eq!(q.pop_due(10), Some((5, "c")));
        assert_eq!(q.pop_due(10), None);
    }

    #[test]
    fn respects_the_due_horizon() {
        let mut q = EventQueue::new();
        q.push(7, ());
        assert_eq!(q.pop_due(6), None);
        assert_eq!(q.pop_due(7), Some((7, ())));
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        q.push(2, 1);
        q.push(2, 2);
        q.push(2, 3);
        assert_eq!(q.pop_due(2), Some((2, 1)));
        assert_eq!(q.pop_due(2), Some((2, 2)));
        assert_eq!(q.pop_due(2), Some((2, 3)));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.push(0, 0);
        assert_eq!(q.len(), 1);
        q.pop_due(0);
        assert!(q.is_empty());
    }
}
