//! Traffic generation: constant-bit-rate flows and Poisson arrivals.

use rim_rng::SmallRng;

/// What traffic the network carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficConfig {
    /// `flows` random source/destination pairs, each emitting one packet
    /// every `period` slots (random initial phase).
    Cbr {
        /// Number of concurrent flows.
        flows: usize,
        /// Slots between packets of one flow.
        period: u64,
    },
    /// Network-wide Poisson arrivals: in every slot, a packet is created
    /// with probability `rate` (at most one per slot), with a fresh
    /// random source/destination pair.
    Poisson {
        /// Per-slot packet arrival probability.
        rate: f64,
    },
}

/// A packet travelling through the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique id (creation order).
    pub id: u64,
    /// Source node.
    pub src: usize,
    /// Final destination node.
    pub dst: usize,
    /// Slot in which the packet was created.
    pub created: u64,
}

/// A CBR flow descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// First emission slot.
    pub phase: u64,
    /// Emission period in slots.
    pub period: u64,
}

/// Draws a random ordered pair of distinct nodes.
pub fn random_pair(n: usize, rng: &mut SmallRng) -> (usize, usize) {
    assert!(n >= 2);
    let src = rng.gen_range(0..n);
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    (src, dst)
}

/// Materializes the CBR flow set for a network of `n` nodes.
pub fn make_flows(cfg: &TrafficConfig, n: usize, rng: &mut SmallRng) -> Vec<Flow> {
    match *cfg {
        TrafficConfig::Cbr { flows, period } => (0..flows)
            .map(|_| {
                let (src, dst) = random_pair(n, rng);
                Flow {
                    src,
                    dst,
                    phase: rng.gen_range(0..period),
                    period,
                }
            })
            .collect(),
        TrafficConfig::Poisson { .. } => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pair_is_distinct_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            let (s, d) = random_pair(4, &mut rng);
            assert_ne!(s, d);
            counts[d] += 1;
        }
        for &c in &counts {
            assert!(c > 1500, "destination distribution skewed: {counts:?}");
        }
    }

    #[test]
    fn cbr_flow_materialization() {
        let mut rng = SmallRng::seed_from_u64(2);
        let flows = make_flows(&TrafficConfig::Cbr { flows: 5, period: 10 }, 8, &mut rng);
        assert_eq!(flows.len(), 5);
        for f in &flows {
            assert_ne!(f.src, f.dst);
            assert!(f.phase < 10);
            assert_eq!(f.period, 10);
        }
    }

    #[test]
    fn poisson_has_no_static_flows() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(make_flows(&TrafficConfig::Poisson { rate: 0.2 }, 8, &mut rng).is_empty());
    }
}
