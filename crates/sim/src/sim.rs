//! The slot-synchronous simulation loop.

use crate::event::EventQueue;
use crate::mac::{MacConfig, MacState};
use crate::metrics::Metrics;
use crate::phy::Coverage;
use crate::traffic::{make_flows, random_pair, Flow, Packet, TrafficConfig};
use rim_rng::SmallRng;
use rim_graph::shortest_path::routing_table;
use rim_udg::Topology;
use std::collections::VecDeque;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of slots to simulate.
    pub slots: u64,
    /// MAC discipline.
    pub mac: MacConfig,
    /// Traffic pattern.
    pub traffic: TrafficConfig,
    /// Path-loss exponent for the energy metric (`energy += r_u^α` per
    /// transmission).
    pub alpha: f64,
    /// RNG seed; runs are bit-reproducible per seed.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            slots: 10_000,
            mac: MacConfig::csma(),
            traffic: TrafficConfig::Cbr {
                flows: 4,
                period: 20,
            },
            alpha: 2.0,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
struct Queued {
    pkt: Packet,
    hops: u32,
}

/// A packet-level simulator over a fixed controlled topology.
pub struct Simulator {
    topology: Topology,
    cfg: SimConfig,
    coverage: Coverage,
    next_hop: Vec<Vec<usize>>,
    /// For [`MacConfig::Tdma`]: per frame slot, the set of allowed links.
    tdma_frame: Vec<std::collections::HashSet<(usize, usize)>>,
}

impl Simulator {
    /// Prepares a simulator: precomputes coverage, routing tables, and —
    /// under [`MacConfig::Tdma`] — the conflict-free link schedule.
    pub fn new(topology: Topology, cfg: SimConfig) -> Self {
        let coverage = Coverage::of(&topology);
        Simulator::with_coverage(topology, cfg, coverage)
    }

    /// Prepares a simulator over an explicitly supplied coverage
    /// relation — e.g. [`Coverage::of_physical`] for runs under a
    /// physical (SINR) model instead of the disk abstraction. Routing
    /// and scheduling still follow the topology's links.
    pub fn with_coverage(topology: Topology, cfg: SimConfig, coverage: Coverage) -> Self {
        let _span = rim_obs::span("sim/prepare");
        let next_hop = routing_table(topology.graph());
        let tdma_frame = if matches!(cfg.mac, MacConfig::Tdma) {
            crate::schedule::tdma_schedule(&topology)
                .slots
                .into_iter()
                .map(|links| links.into_iter().collect())
                .collect()
        } else {
            Vec::new()
        };
        Simulator {
            topology,
            cfg,
            coverage,
            next_hop,
            tdma_frame,
        }
    }

    /// The per-node interference the run operates under (for reporting).
    pub fn interference_profile(&self) -> Vec<usize> {
        (0..self.topology.num_nodes())
            .map(|v| self.coverage.interference_at(v))
            .collect()
    }

    /// Runs the simulation and returns the accumulated metrics.
    pub fn run(&self) -> Metrics {
        let _span = rim_obs::span("sim/run");
        let n = self.topology.num_nodes();
        let cfg = &self.cfg;
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut metrics = Metrics {
            collisions_at: vec![0; n],
            received_at: vec![0; n],
            ..Metrics::default()
        };
        if n < 2 {
            return metrics;
        }

        let mut arrivals: EventQueue<usize> = EventQueue::new();
        let flows: Vec<Flow> = make_flows(&cfg.traffic, n, &mut rng);
        for (i, f) in flows.iter().enumerate() {
            arrivals.push(f.phase, i);
        }

        let mut queues: Vec<VecDeque<Queued>> = vec![VecDeque::new(); n];
        let mut mac: Vec<MacState> = vec![MacState::default(); n];
        let mut is_tx = vec![false; n];
        let mut prev_tx = vec![false; n];
        let mut next_id = 0u64;

        let admit = |src: usize,
                         dst: usize,
                         now: u64,
                         next_hop: &[Vec<usize>],
                         queues: &mut Vec<VecDeque<Queued>>,
                         metrics: &mut Metrics,
                         next_id: &mut u64| {
            metrics.generated += 1;
            if next_hop[src][dst] == usize::MAX {
                metrics.dropped_no_route += 1;
                return;
            }
            queues[src].push_back(Queued {
                pkt: Packet {
                    id: *next_id,
                    src,
                    dst,
                    created: now,
                },
                hops: 0,
            });
            *next_id += 1;
        };

        // Event accounting for the observability layer. The tallies are
        // plain locals updated unconditionally (they cost an add) and
        // flushed in O(1) counter updates after the loop, so enabling or
        // disabling a sink cannot change what the simulation computes.
        let obs_on = rim_obs::active();
        let mut arrival_events = 0u64;
        let mut transmission_events = 0u64;

        for now in 0..cfg.slots {
            // 1. Traffic arrivals.
            while let Some((_, flow_idx)) = arrivals.pop_due(now) {
                arrival_events += 1;
                let f = flows[flow_idx];
                admit(f.src, f.dst, now, &self.next_hop, &mut queues, &mut metrics, &mut next_id);
                arrivals.push(now + f.period, flow_idx);
            }
            if let TrafficConfig::Poisson { rate } = cfg.traffic {
                if rng.gen::<f64>() < rate {
                    arrival_events += 1;
                    let (src, dst) = random_pair(n, &mut rng);
                    admit(src, dst, now, &self.next_hop, &mut queues, &mut metrics, &mut next_id);
                }
            }

            // 2. MAC decisions (ascending node order; deterministic).
            if matches!(cfg.mac, MacConfig::Tdma) {
                if self.tdma_frame.is_empty() {
                    is_tx.iter_mut().for_each(|x| *x = false);
                } else {
                    let slot = &self.tdma_frame[(now % self.tdma_frame.len() as u64) as usize];
                    for u in 0..n {
                        is_tx[u] = queues[u].front().is_some_and(|q| {
                            slot.contains(&(u, self.next_hop[u][q.pkt.dst]))
                        });
                    }
                }
            } else {
                for u in 0..n {
                    let busy = prev_tx[u]
                        || self.coverage.coverers[u]
                            .iter()
                            .any(|&w| prev_tx[w as usize]);
                    is_tx[u] =
                        mac[u].wants_to_transmit(&cfg.mac, !queues[u].is_empty(), busy, &mut rng);
                }
            }

            // 3. Receptions, evaluated against the full transmitter set.
            for u in 0..n {
                if !is_tx[u] {
                    continue;
                }
                transmission_events += 1;
                // rim-lint: allow(no-unwrap-in-lib) — is_tx[u] implies a queued frame
                let head = queues[u].front().expect("transmitter with empty queue");
                let v = self.next_hop[u][head.pkt.dst];
                debug_assert_ne!(v, usize::MAX, "queued packet without route");
                metrics.transmissions += 1;
                metrics.energy += self.topology.radius(u).powf(cfg.alpha);
                if self.coverage.received(u, v, &is_tx) {
                    metrics.received_at[v] += 1;
                    // rim-lint: allow(no-unwrap-in-lib) — same invariant: is_tx[u] implies a queued frame
                    let mut q = queues[u].pop_front().unwrap();
                    mac[u].on_success();
                    q.hops += 1;
                    if v == q.pkt.dst {
                        metrics.delivered += 1;
                        metrics.total_delay += now - q.pkt.created;
                        metrics.total_hops += q.hops as u64;
                    } else {
                        queues[v].push_back(q);
                    }
                } else {
                    metrics.collisions += 1;
                    metrics.collisions_at[v] += 1;
                    if mac[u].on_failure(&cfg.mac, &mut rng) {
                        queues[u].pop_front();
                        metrics.dropped_retries += 1;
                    }
                }
            }

            std::mem::swap(&mut prev_tx, &mut is_tx);

            // Aggregate queue depth per slot; the O(n) walk only runs
            // with a sink installed.
            if obs_on {
                let depth: u64 = queues.iter().map(|q| q.len() as u64).sum();
                rim_obs::record("sim.queue_depth", depth);
            }
        }
        rim_obs::counter_add("sim.slots", cfg.slots);
        rim_obs::counter_add("sim.events", arrival_events + transmission_events);
        rim_obs::counter_add("sim.arrival_events", arrival_events);
        rim_obs::counter_add("sim.transmission_events", transmission_events);
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::NodeSet;

    fn chain(n: usize, gap: f64) -> Topology {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * gap).collect();
        let pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::from_pairs(NodeSet::on_line(&xs), &pairs)
    }

    #[test]
    fn lone_flow_on_a_link_delivers_everything() {
        let t = chain(2, 0.5);
        let cfg = SimConfig {
            slots: 2_000,
            mac: MacConfig::csma(),
            traffic: TrafficConfig::Cbr { flows: 1, period: 10 },
            alpha: 2.0,
            seed: 1,
        };
        let m = Simulator::new(t, cfg).run();
        assert!(m.generated >= 190);
        assert!(m.delivery_ratio() > 0.98, "ratio={}", m.delivery_ratio());
        assert_eq!(m.collisions, 0, "no contention possible");
        // Energy: every transmission at radius 0.5, alpha 2.
        assert!((m.energy - 0.25 * m.transmissions as f64).abs() < 1e-9);
    }

    #[test]
    fn multihop_forwarding_counts_hops() {
        let t = chain(4, 0.4);
        let cfg = SimConfig {
            slots: 5_000,
            mac: MacConfig::csma(),
            traffic: TrafficConfig::Cbr { flows: 1, period: 50 },
            alpha: 2.0,
            seed: 7,
        };
        let sim = Simulator::new(t, cfg);
        let m = sim.run();
        assert!(m.delivered > 0);
        // The single flow has a fixed path; every delivered packet used
        // the same number of hops = graph distance.
        let hops = m.total_hops as f64 / m.delivered as f64;
        assert!((1.0..=3.0).contains(&hops));
        assert_eq!(hops.fract(), 0.0, "fixed route must give integral hops");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let t = chain(6, 0.3);
        let cfg = SimConfig {
            slots: 3_000,
            mac: MacConfig::aloha(),
            traffic: TrafficConfig::Poisson { rate: 0.2 },
            alpha: 2.0,
            seed: 99,
        };
        let a = Simulator::new(t.clone(), cfg).run();
        let b = Simulator::new(t, cfg).run();
        assert_eq!(a, b);
    }

    #[test]
    fn saturated_aloha_starves() {
        // Two flows converging on the middle node with p = 1: every slot
        // both neighbors transmit, every frame collides at node 1.
        let t = chain(3, 0.4);
        let cfg = SimConfig {
            slots: 500,
            mac: MacConfig::SlottedAloha { p: 1.0 },
            traffic: TrafficConfig::Cbr { flows: 16, period: 2 },
            alpha: 2.0,
            seed: 3,
        };
        let m = Simulator::new(t, cfg).run();
        assert!(m.collision_rate() > 0.9, "rate={}", m.collision_rate());
    }

    #[test]
    fn disconnected_destination_is_dropped_at_admission() {
        // Two separate links: flows whose endpoints land in different
        // components are counted as no-route drops.
        let ns = NodeSet::on_line(&[0.0, 0.2, 5.0, 5.2]);
        let t = Topology::from_pairs(ns, &[(0, 1), (2, 3)]);
        let cfg = SimConfig {
            slots: 1_000,
            mac: MacConfig::csma(),
            traffic: TrafficConfig::Poisson { rate: 0.5 },
            alpha: 2.0,
            seed: 11,
        };
        let m = Simulator::new(t, cfg).run();
        assert!(m.dropped_no_route > 0);
        assert!(m.generated as i64 - m.dropped_no_route as i64 >= 0);
    }

    #[test]
    fn tdma_is_collision_free_and_delivers() {
        let t = chain(8, 0.3);
        let cfg = SimConfig {
            slots: 20_000,
            mac: MacConfig::Tdma,
            traffic: TrafficConfig::Cbr { flows: 6, period: 40 },
            alpha: 2.0,
            seed: 5,
        };
        let m = Simulator::new(t, cfg).run();
        assert_eq!(m.collisions, 0, "TDMA must never collide");
        assert!(m.generated > 0);
        assert!(
            m.delivery_ratio() > 0.95,
            "delivery = {}",
            m.delivery_ratio()
        );
        // Collision-free forwarding: every transmission succeeds, so the
        // hop count of delivered packets can only lag behind by packets
        // still in flight when the run ended.
        assert!(m.transmissions >= m.total_hops);
        assert!(m.dropped_retries == 0);
    }

    #[test]
    fn tdma_on_edgeless_topology_is_silent() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.4, 0.8]));
        let cfg = SimConfig {
            slots: 500,
            mac: MacConfig::Tdma,
            traffic: TrafficConfig::Poisson { rate: 0.3 },
            alpha: 2.0,
            seed: 2,
        };
        let m = Simulator::new(t, cfg).run();
        assert_eq!(m.transmissions, 0);
        assert_eq!(m.delivered, 0);
        assert!(m.dropped_no_route > 0);
    }

    #[test]
    fn tiny_networks_are_inert() {
        let t = Topology::empty(NodeSet::on_line(&[0.3]));
        let m = Simulator::new(t, SimConfig::default()).run();
        assert_eq!(m.generated, 0);
        assert_eq!(m.transmissions, 0);
        assert_eq!(m.collisions_at, vec![0]);
    }
}
