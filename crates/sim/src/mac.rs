//! MAC disciplines and per-node MAC state.

use rim_rng::SmallRng;

/// The medium-access discipline every node runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MacConfig {
    /// `p`-persistent slotted ALOHA: a backlogged node transmits in each
    /// slot independently with probability `p`. Collided frames stay at
    /// the head of the queue and are retried forever.
    SlottedAloha {
        /// Per-slot transmission probability (`0 < p <= 1`).
        p: f64,
    },
    /// Carrier sense + binary exponential backoff: a backlogged node with
    /// expired backoff transmits if it sensed the medium idle in the
    /// previous slot; each failed transmission doubles the backoff window
    /// (capped at `2^max_backoff_exp`), and a frame is dropped after
    /// `max_retries` failures.
    Csma {
        /// Cap on the backoff exponent.
        max_backoff_exp: u32,
        /// Drop threshold for consecutive failures of one frame.
        max_retries: u32,
    },
    /// Conflict-free TDMA: the simulator precomputes a link schedule
    /// ([`crate::schedule::tdma_schedule`]) for the topology; a node
    /// transmits exactly when the current frame slot contains the link to
    /// its head packet's next hop. Collision-free by construction.
    Tdma,
}

impl MacConfig {
    /// A reasonable default ALOHA configuration.
    pub fn aloha() -> Self {
        MacConfig::SlottedAloha { p: 0.25 }
    }

    /// A reasonable default CSMA configuration.
    pub fn csma() -> Self {
        MacConfig::Csma {
            max_backoff_exp: 6,
            max_retries: 8,
        }
    }
}

/// Per-node MAC state.
#[derive(Debug, Clone, Default)]
pub struct MacState {
    /// Remaining backoff slots (CSMA only).
    pub backoff: u32,
    /// Consecutive failures of the head frame (CSMA only).
    pub retries: u32,
}

impl MacState {
    /// Decides whether this node attempts transmission in the current
    /// slot. `medium_busy` is last slot's carrier-sense verdict.
    pub fn wants_to_transmit(
        &mut self,
        cfg: &MacConfig,
        has_frame: bool,
        medium_busy: bool,
        rng: &mut SmallRng,
    ) -> bool {
        if !has_frame {
            return false;
        }
        match *cfg {
            MacConfig::Tdma => {
                // rim-lint: allow(no-unwrap-in-lib) — Tdma takes the scheduler path
                unreachable!("TDMA transmission decisions are made by the scheduler")
            }
            MacConfig::SlottedAloha { p } => rng.gen::<f64>() < p,
            MacConfig::Csma { .. } => {
                if self.backoff > 0 {
                    self.backoff -= 1;
                    return false;
                }
                if medium_busy {
                    return false;
                }
                true
            }
        }
    }

    /// Records a successful transmission of the head frame.
    pub fn on_success(&mut self) {
        self.backoff = 0;
        self.retries = 0;
    }

    /// Records a failed transmission; returns `true` if the frame must be
    /// dropped (CSMA retry limit exceeded).
    pub fn on_failure(&mut self, cfg: &MacConfig, rng: &mut SmallRng) -> bool {
        match *cfg {
            // TDMA is collision-free; a failure would indicate a scheduler
            // bug, but the policy is simply "retry next frame".
            MacConfig::SlottedAloha { .. } | MacConfig::Tdma => false,
            MacConfig::Csma {
                max_backoff_exp,
                max_retries,
            } => {
                self.retries += 1;
                if self.retries > max_retries {
                    self.backoff = 0;
                    self.retries = 0;
                    return true;
                }
                // Clamp the shift: u32 shifts of >= 32 are UB-adjacent
                // (panic in debug, wrap in release); windows beyond 2^16
                // slots are pointless anyway.
                let exp = self.retries.min(max_backoff_exp).min(16);
                let window = 1u32 << exp;
                self.backoff = rng.gen_range(0..window);
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aloha_transmits_with_probability_p() {
        let mut rng = SmallRng::seed_from_u64(1);
        let cfg = MacConfig::SlottedAloha { p: 0.3 };
        let mut st = MacState::default();
        let trials = 20_000;
        let mut hits = 0;
        for _ in 0..trials {
            if st.wants_to_transmit(&cfg, true, false, &mut rng) {
                hits += 1;
            }
        }
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn idle_node_never_transmits() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut st = MacState::default();
        for cfg in [MacConfig::aloha(), MacConfig::csma()] {
            for _ in 0..100 {
                assert!(!st.wants_to_transmit(&cfg, false, false, &mut rng));
            }
        }
    }

    #[test]
    fn csma_defers_on_busy_medium_and_counts_down_backoff() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cfg = MacConfig::csma();
        let mut st = MacState::default();
        assert!(!st.wants_to_transmit(&cfg, true, true, &mut rng), "busy → defer");
        st.backoff = 2;
        assert!(!st.wants_to_transmit(&cfg, true, false, &mut rng));
        assert!(!st.wants_to_transmit(&cfg, true, false, &mut rng));
        assert!(st.wants_to_transmit(&cfg, true, false, &mut rng), "backoff expired");
    }

    #[test]
    fn csma_backoff_grows_and_drops_after_retries() {
        let mut rng = SmallRng::seed_from_u64(4);
        let cfg = MacConfig::Csma {
            max_backoff_exp: 4,
            max_retries: 3,
        };
        let mut st = MacState::default();
        assert!(!st.on_failure(&cfg, &mut rng));
        assert!(st.backoff < 2, "first window is [0,2)");
        assert!(!st.on_failure(&cfg, &mut rng));
        assert!(st.backoff < 4);
        assert!(!st.on_failure(&cfg, &mut rng));
        assert!(st.backoff < 8);
        assert!(st.on_failure(&cfg, &mut rng), "fourth failure drops");
        assert_eq!(st.retries, 0, "state reset after drop");
    }

    #[test]
    fn success_resets_state() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = MacConfig::csma();
        let mut st = MacState::default();
        st.on_failure(&cfg, &mut rng);
        st.on_success();
        assert_eq!(st.backoff, 0);
        assert_eq!(st.retries, 0);
    }
}
