//! Link-level TDMA scheduling under the disk interference model.
//!
//! A complementary way to ground the interference measure: instead of
//! contention (ALOHA/CSMA), schedule links into synchronous slots such
//! that **every reception in a slot succeeds** under the paper's disk
//! rule. The minimum frame length of such a schedule is the classic
//! "how much parallelism does the topology admit" question, and it is
//! governed by the receiver-centric interference: every node that can
//! destroy a reception at `v` is one more link that cannot share `v`'s
//! slot.
//!
//! We schedule *directed* links (each undirected edge carries traffic
//! both ways) with greedy largest-degree-first coloring of the conflict
//! graph.

use crate::phy::Coverage;
use rim_udg::Topology;

/// A directed link `(sender, receiver)` of the topology.
pub type Link = (usize, usize);

/// A TDMA frame: `slots[s]` lists the links active in slot `s`; all
/// receptions within one slot succeed simultaneously.
#[derive(Debug, Clone)]
pub struct LinkSchedule {
    /// Links per slot.
    pub slots: Vec<Vec<Link>>,
}

impl LinkSchedule {
    /// Frame length (number of slots).
    pub fn frame_length(&self) -> usize {
        self.slots.len()
    }

    /// Total scheduled links (each directed link exactly once).
    pub fn num_links(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// Checks that every slot is conflict-free under the disk model:
    /// with exactly the slot's senders transmitting, every scheduled
    /// reception succeeds. Returns the first violating `(slot, link)`.
    pub fn verify(&self, t: &Topology) -> Option<(usize, Link)> {
        let cov = Coverage::of(t);
        let n = t.num_nodes();
        let mut is_tx = vec![false; n];
        for (s, links) in self.slots.iter().enumerate() {
            is_tx.iter_mut().for_each(|x| *x = false);
            for &(u, _) in links {
                if is_tx[u] {
                    return Some((s, (u, usize::MAX))); // duplicate sender
                }
                is_tx[u] = true;
            }
            for &(u, v) in links {
                if !cov.received(u, v, &is_tx) {
                    return Some((s, (u, v)));
                }
            }
        }
        None
    }
}

/// Do two directed links conflict (cannot share a slot)?
fn conflicts(cov: &Coverage, a: Link, b: Link) -> bool {
    let (u, v) = a;
    let (w, x) = b;
    // Shared node in any role: half duplex and single radio.
    if u == w || u == x || v == w || v == x {
        return true;
    }
    // Sender of one covers the receiver of the other.
    cov.coverers[v].contains(&(w as u32)) || cov.coverers[x].contains(&(u as u32))
}

/// Computes a conflict-free TDMA schedule for all directed links of the
/// topology, greedy largest-conflict-degree-first.
///
/// ```
/// use rim_sim::schedule::tdma_schedule;
/// use rim_udg::{NodeSet, Topology};
///
/// let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.4, 0.8]), &[(0, 1), (1, 2)]);
/// let s = tdma_schedule(&t);
/// assert_eq!(s.num_links(), 4);           // two links, two directions
/// assert_eq!(s.verify(&t), None);         // every slot is conflict-free
/// assert!(s.frame_length() >= 4);         // node 1 touches all links
/// ```
pub fn tdma_schedule(t: &Topology) -> LinkSchedule {
    let cov = Coverage::of(t);
    let mut links: Vec<Link> = Vec::with_capacity(2 * t.num_edges());
    for e in t.edges() {
        links.push((e.u, e.v));
        links.push((e.v, e.u));
    }
    let m = links.len();
    // Conflict adjacency (dense bitset-free m² scan; fine for the
    // experiment scales — topologies are sparse, m = 2(n-1) for trees).
    let mut conflict: Vec<Vec<u32>> = vec![Vec::new(); m];
    for i in 0..m {
        for j in (i + 1)..m {
            if conflicts(&cov, links[i], links[j]) {
                conflict[i].push(j as u32);
                conflict[j].push(i as u32);
            }
        }
    }
    // Greedy coloring, processing by descending conflict degree
    // (Welsh–Powell), ties by link index for determinism.
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_unstable_by_key(|&i| (usize::MAX - conflict[i].len(), i));
    let mut color = vec![usize::MAX; m];
    let mut used: Vec<bool> = Vec::new();
    for &i in &order {
        used.iter_mut().for_each(|u| *u = false);
        for &j in &conflict[i] {
            let c = color[j as usize];
            if c != usize::MAX {
                if c >= used.len() {
                    used.resize(c + 1, false);
                }
                used[c] = true;
            }
        }
        let c = used.iter().position(|&u| !u).unwrap_or(used.len());
        if c >= used.len() {
            used.resize(c + 1, false);
        }
        color[i] = c;
    }
    let num_colors = color.iter().copied().max().map_or(0, |c| c + 1);
    let mut slots = vec![Vec::new(); num_colors];
    for (i, &c) in color.iter().enumerate() {
        slots[c].push(links[i]);
    }
    for s in &mut slots {
        s.sort_unstable();
    }
    LinkSchedule { slots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::NodeSet;

    fn chain(n: usize, gap: f64) -> Topology {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * gap).collect();
        let pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::from_pairs(NodeSet::on_line(&xs), &pairs)
    }

    #[test]
    fn schedule_is_valid_and_complete() {
        let t = chain(10, 0.3);
        let s = tdma_schedule(&t);
        assert_eq!(s.num_links(), 2 * t.num_edges());
        assert_eq!(s.verify(&t), None);
    }

    #[test]
    fn single_link_needs_two_slots() {
        // The two directions of one edge share both endpoints.
        let t = chain(2, 0.5);
        let s = tdma_schedule(&t);
        assert_eq!(s.frame_length(), 2);
        assert_eq!(s.verify(&t), None);
    }

    #[test]
    fn frame_is_at_least_twice_the_max_degree() {
        // All 2·deg(v) directed links incident to v pairwise conflict.
        let t = Topology::from_pairs(
            NodeSet::new(vec![
                rim_geom::Point::new(0.0, 0.0),
                rim_geom::Point::new(0.5, 0.0),
                rim_geom::Point::new(-0.5, 0.0),
                rim_geom::Point::new(0.0, 0.5),
            ]),
            &[(0, 1), (0, 2), (0, 3)],
        );
        let s = tdma_schedule(&t);
        assert!(s.frame_length() >= 2 * t.graph().max_degree());
        assert_eq!(s.verify(&t), None);
    }

    #[test]
    fn low_interference_topology_gets_shorter_frames() {
        // Exponential chain: the linear connection's frame stretches with
        // n (every hub's disk blocks the left end), while a bounded-
        // interference uniform chain reuses slots.
        let uniform = chain(40, 0.3);
        let s_uniform = tdma_schedule(&uniform);
        // Spatial reuse: far-apart links share slots, frame stays small.
        assert!(
            s_uniform.frame_length() <= 10,
            "uniform chain frame = {}",
            s_uniform.frame_length()
        );
        assert_eq!(s_uniform.verify(&uniform), None);
    }

    #[test]
    fn verify_catches_corrupted_schedules() {
        let t = chain(4, 0.3);
        let mut s = tdma_schedule(&t);
        // Merge everything into slot 0: receptions must now fail.
        let all: Vec<Link> = s.slots.drain(..).flatten().collect();
        s.slots = vec![all];
        assert!(s.verify(&t).is_some());
    }

    #[test]
    fn empty_topology_has_empty_frame() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.9]));
        let s = tdma_schedule(&t);
        assert_eq!(s.frame_length(), 0);
        assert_eq!(s.verify(&t), None);
    }
}
