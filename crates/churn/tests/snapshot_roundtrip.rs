//! Property tests for snapshot/restore: interrupting a run at *any*
//! edit and restoring from bytes must be observationally invisible.
//!
//! For random `(family, n0, seed, k, suffix)` the suite runs `k` edits,
//! snapshots, restores, replays the suffix on both the original and the
//! restored sim, and requires bit-identical results on the whole
//! equality surface: live interference vector, `I(G')`, the coverage
//! histogram, deterministic op counters, and the final snapshot bytes
//! themselves (which cover positions, radii, liveness, edges, the
//! pending-overlay boundary, and the RNG stream position).

use rim_churn::{decode_snapshot, encode_snapshot, ChurnConfig, ChurnSim, Family};
use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};

#[derive(Debug)]
struct Case {
    cfg: ChurnConfig,
    snapshot_at: u64,
    suffix: u64,
}

fn gen_case(rng: &mut SmallRng) -> Case {
    let family = Family::ALL[rng.gen_range(0usize..Family::ALL.len())];
    let cfg = ChurnConfig {
        family,
        n0: rng.gen_range(4usize..80),
        seed: rng.next_u64(),
    };
    Case {
        cfg,
        snapshot_at: rng.gen_range(0u64..900),
        suffix: rng.gen_range(1u64..400),
    }
}

#[test]
fn snapshot_restore_replay_is_bit_identical() {
    check(
        "snapshot_restore_replay_is_bit_identical",
        96,
        gen_case,
        |case| {
            let budget = case.snapshot_at + case.suffix;
            // The uninterrupted reference run.
            let mut whole = ChurnSim::new(case.cfg, budget);
            whole.run_to_end();

            // The interrupted run: k edits, freeze to bytes, restore,
            // finish.
            let mut prefix = ChurnSim::new(case.cfg, budget);
            for _ in 0..case.snapshot_at {
                prefix.step();
            }
            let frozen = encode_snapshot(&prefix);
            let mut resumed = decode_snapshot(&frozen)
                .map_err(|e| format!("own snapshot failed to decode: {e}"))?;
            // Restoring must itself be invisible: same bytes out.
            prop_ensure_eq!(encode_snapshot(&resumed), frozen);
            resumed.run_to_end();

            prop_ensure_eq!(resumed.live_interference(), whole.live_interference());
            prop_ensure_eq!(resumed.graph_interference(), whole.graph_interference());
            prop_ensure_eq!(
                resumed.engine().coverage_histogram(),
                whole.engine().coverage_histogram()
            );
            prop_ensure_eq!(resumed.counts(), whole.counts());
            prop_ensure!(
                encode_snapshot(&resumed) == encode_snapshot(&whole),
                "final snapshots differ after an interrupted run"
            );
            Ok(())
        },
    );
}

#[test]
fn double_interruption_composes() {
    // Snapshot/restore twice mid-run: the composition must still equal
    // the uninterrupted run (restore is idempotent state transfer, not
    // an approximation that degrades).
    let cfg = ChurnConfig { family: Family::Clustered, n0: 40, seed: 1234 };
    let mut whole = ChurnSim::new(cfg, 1_500);
    whole.run_to_end();

    let mut s = ChurnSim::new(cfg, 1_500);
    for _ in 0..400 {
        s.step();
    }
    let mut s = decode_snapshot(&encode_snapshot(&s)).expect("first freeze");
    for _ in 0..600 {
        s.step();
    }
    let mut s = decode_snapshot(&encode_snapshot(&s)).expect("second freeze");
    s.run_to_end();
    assert_eq!(encode_snapshot(&s), encode_snapshot(&whole));
}

#[test]
fn snapshots_at_every_early_edit_decode() {
    // The encoder must be total over reachable states — including the
    // awkward early ones (empty instance, mid-bootstrap, first
    // departures).
    let cfg = ChurnConfig { family: Family::Duplicate, n0: 12, seed: 77 };
    let mut s = ChurnSim::new(cfg, 80);
    for edit in 0..=80 {
        let bytes = encode_snapshot(&s);
        let r = decode_snapshot(&bytes)
            .unwrap_or_else(|e| panic!("undecodable snapshot at edit {edit}: {e}"));
        assert_eq!(encode_snapshot(&r), bytes, "unstable encoding at edit {edit}");
        if s.step().is_none() {
            break;
        }
    }
}
