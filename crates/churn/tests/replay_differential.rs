//! Replay-differential layer: the incrementally maintained churn state
//! is pinned against from-scratch recomputation, across all five
//! instance families, at sampled checkpoints of long seeded traces.
//!
//! Four pins:
//! * **Checkpointed exact equality** — maintained counts vs
//!   `interference_vector_naive` over the live topology, per family.
//! * **Engine invariance under churn** — indexed / parallel / streaming
//!   engines agree with the naive oracle on churned instances (spot
//!   checks; full engine matrices live in `rim-core`'s own suite).
//! * **√(ln n) envelope** — on the uniform family, `I(G')` stays inside
//!   the Devroye–Morin band across the *whole* trace (post-bootstrap).
//! * **Long-trace smoke** — a ≥10⁵-edit run, gated behind
//!   `RIM_CHURN_LONG=1` so `cargo test -q` stays fast; run it in
//!   release mode.

use rim_churn::{ChurnConfig, ChurnSim, Family};
use rim_core::receiver::{interference_vector_naive, interference_vector_with, Engine};
use rim_core::StreamInstance;

fn cfg(family: Family, n0: usize, seed: u64) -> ChurnConfig {
    ChurnConfig { family, n0, seed }
}

/// Maintained counts must equal a naive from-scratch recompute of the
/// live topology — the core differential invariant, here exercised by
/// real churn traces instead of synthetic edit lists.
fn assert_checkpoint_exact(s: &ChurnSim, context: &str) {
    let (t, slots) = s.engine().live_topology();
    let want = interference_vector_naive(&t);
    let got: Vec<usize> = slots.iter().map(|&v| s.engine().interference_at(v)).collect();
    assert_eq!(got, want, "maintained counts diverged ({context})");
    assert_eq!(
        s.graph_interference(),
        want.iter().copied().max().unwrap_or(0),
        "histogram max diverged ({context})"
    );
}

#[test]
fn checkpointed_equality_across_all_families() {
    for family in Family::ALL {
        for seed in [1u64, 2] {
            let mut s = ChurnSim::new(cfg(family, 96, seed), 4_000);
            let mut checkpoints = 0;
            while s.step().is_some() {
                if s.counts().edits % 500 == 0 {
                    assert_checkpoint_exact(
                        &s,
                        &format!("family={family} seed={seed} edit={}", s.counts().edits),
                    );
                    checkpoints += 1;
                }
            }
            assert_checkpoint_exact(&s, &format!("family={family} seed={seed} final"));
            assert!(checkpoints >= 8, "family {family}: checkpoints did not sample the trace");
        }
    }
}

#[test]
fn engines_agree_on_churned_instances() {
    // Duplicate and exp-chain are the families that historically break
    // spatial indexes (coincident points, multiscale gaps); uniform is
    // the volume case. Spot-check the engine matrix on churned states.
    for family in [Family::Uniform, Family::Duplicate, Family::ExpChain] {
        let mut s = ChurnSim::new(cfg(family, 80, 5), 2_500);
        s.run_to_end();
        let (t, _slots) = s.engine().live_topology();
        let want = interference_vector_naive(&t);
        for engine in [Engine::Indexed, Engine::Parallel] {
            assert_eq!(
                interference_vector_with(&t, engine),
                want,
                "{engine:?} diverged from naive on churned {family}"
            );
        }
        let streamed: Vec<usize> = StreamInstance::from_topology(&t)
            .interference_counts()
            .into_iter()
            .map(|c| c as usize)
            .collect();
        assert_eq!(streamed, want, "streaming kernel diverged on churned {family}");
    }
}

/// Devroye–Morin: on unit-density uniform instances with
/// nearest-neighbor-scale radii, max interference is Θ(√(log n)) w.h.p.
/// Churn keeps radii NN-*scale* but not NN-*minimal*: relink ops attach
/// k-th-nearest links (k ≤ 4), lifting the constant above the pure-NN
/// band the streaming bench gates on — so the upper constant gets a
/// calibrated 1.35× allowance here (measured headroom ~1.25× at
/// n₀ = 4096 across seeds). A violation means churn broke either the
/// generator's uniformity or the maintained maximum.
fn churn_envelope(live: usize) -> (f64, f64) {
    let (lo, hi) = rim_core::sqrt_log_envelope(live);
    (lo, hi * 1.35)
}

#[test]
fn uniform_family_holds_the_envelope_across_the_trace() {
    for seed in [1u64, 2, 3] {
        let n0 = 1024;
        let mut s = ChurnSim::new(cfg(Family::Uniform, n0, seed), 20_000);
        while s.step().is_some() {
            let past_bootstrap = s.counts().edits > n0 as u64;
            if past_bootstrap && s.counts().edits % 500 == 0 {
                let (lo, hi) = churn_envelope(s.live_count());
                let max = s.graph_interference() as f64;
                assert!(
                    (lo..=hi).contains(&max),
                    "sqrt(log n) gate violated under churn: seed={seed} \
                     edit={} live={} max I = {max} outside [{lo:.2}, {hi:.2}]",
                    s.counts().edits,
                    s.live_count()
                );
            }
        }
    }
}

/// ≥10⁵-edit smoke at a service-sized population. Opt in with
/// `RIM_CHURN_LONG=1 cargo test --release -p rim-churn --test
/// replay_differential long_trace -- --ignored --nocapture`; the
/// million-edit tier lives in the `churn_workload` bench.
#[test]
#[ignore = "long-running; set RIM_CHURN_LONG=1 and run in release mode"]
fn long_trace_smoke() {
    if std::env::var_os("RIM_CHURN_LONG").is_none() {
        eprintln!("RIM_CHURN_LONG not set; skipping the 10^5-edit smoke");
        return;
    }
    let edits = 120_000u64;
    let mut s = ChurnSim::new(cfg(Family::Uniform, 4_096, 42), edits);
    while s.step().is_some() {
        if s.counts().edits % 20_000 == 0 {
            assert_checkpoint_exact(&s, &format!("edit {}", s.counts().edits));
            // Flat memory: slots bounded by the compaction invariant.
            let dead = s.engine().len() - s.engine().live_count();
            assert!(dead <= s.engine().live_count().max(256), "tombstones leaked: {dead}");
        }
    }
    assert_eq!(s.counts().edits, edits);
    assert_checkpoint_exact(&s, "final");
    let (lo, hi) = churn_envelope(s.live_count());
    let max = s.graph_interference() as f64;
    assert!((lo..=hi).contains(&max), "final max I {max} outside [{lo:.2}, {hi:.2}]");
}
