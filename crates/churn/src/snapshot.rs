//! Compact binary snapshot of the full churn-sim state.
//!
//! Layout (all integers little-endian, floats as IEEE-754 bit
//! patterns):
//!
//! ```text
//! magic    "RIMCHRN1"                                    8 bytes
//! config   family u8, n0 u64, seed u64
//! trace    rng [u64; 4], live u64, remaining u64, bootstrapped u8
//! counts   8 × u64   (OpCounts::fields order)
//! engine   n u64,
//!          points   n × (f64, f64),
//!          radii    n × f64,
//!          alive    n × u8,
//!          m u64, edges m × (u32, u32),
//!          indexed_len u64, radius_bound f64, fixed_radii u8
//! trailer  fnv1a-64 checksum of everything above          u64
//! ```
//!
//! The encoding is *complete and minimal*: everything a restored run
//! needs to continue bit-identically (RNG stream position, the engine's
//! amortization state — `indexed_len` pins the pending overlay,
//! `radius_bound` the candidate bound — and the deterministic op
//! counters), and nothing derivable (coverage counts, histogram, grid,
//! live-id list, edge weights — all recomputed on restore from the
//! fields above). A flipped bit anywhere fails the checksum; a
//! structurally invalid body that somehow passes fails the engine's
//! own [`rim_core::DynamicInterference::from_state`] validation.
//! Decode never panics.

use crate::sim::{ChurnSim, OpCounts};
use crate::trace::{ChurnConfig, ChurnTrace, Family};
use rim_core::{DynState, DynamicInterference};
use rim_geom::Point;

/// Snapshot format magic + version. Bump the trailing digit on any
/// layout change.
pub const MAGIC: [u8; 8] = *b"RIMCHRN1";

/// FNV-1a 64-bit, the workspace's standard tiny checksum.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes the full sim state. The output is a pure function of the
/// sim's observable state: two sims that behave identically encode
/// identically (the property-test equality surface).
pub fn encode_snapshot(sim: &ChurnSim) -> Vec<u8> {
    let cfg = sim.config();
    let s = sim.engine().export_state();
    let n = s.points.len();
    let mut out = Vec::with_capacity(64 + n * 33 + s.edges.len() * 8);
    out.extend_from_slice(&MAGIC);
    out.push(cfg.family.code());
    out.extend_from_slice(&(cfg.n0 as u64).to_le_bytes());
    out.extend_from_slice(&cfg.seed.to_le_bytes());
    let (rng, live, remaining, bootstrapped) = sim.trace().parts();
    for w in rng {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&live.to_le_bytes());
    out.extend_from_slice(&remaining.to_le_bytes());
    out.push(u8::from(bootstrapped));
    for (_, v) in sim.counts().fields() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(n as u64).to_le_bytes());
    for p in &s.points {
        out.extend_from_slice(&p.x.to_bits().to_le_bytes());
        out.extend_from_slice(&p.y.to_bits().to_le_bytes());
    }
    for r in &s.radii {
        out.extend_from_slice(&r.to_bits().to_le_bytes());
    }
    for &a in &s.alive {
        out.push(u8::from(a));
    }
    out.extend_from_slice(&(s.edges.len() as u64).to_le_bytes());
    for &(u, v) in &s.edges {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out.extend_from_slice(&(s.indexed_len as u64).to_le_bytes());
    out.extend_from_slice(&s.radius_bound.to_bits().to_le_bytes());
    out.push(u8::from(s.fixed_radii));
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Bounds-checked little-endian reader; every failure is an `Err`.
struct Rd<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Rd<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        match self.b.get(self.at..self.at + n) {
            Some(s) => {
                self.at += n;
                Ok(s)
            }
            None => Err(format!("snapshot truncated at byte {}", self.at)),
        }
    }

    fn u8(&mut self) -> Result<u8, String> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| "internal: empty take(1)".to_string())
    }

    fn u32(&mut self) -> Result<u32, String> {
        let s = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(s);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let s = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(s);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u64` count that must fit comfortably in memory (guards against
    /// a corrupted length field allocating gigabytes before the
    /// checksum... which is why the checksum is verified *first*; this
    /// is defense in depth).
    fn count(&mut self, what: &str) -> Result<usize, String> {
        let v = self.u64()?;
        if v > (1 << 32) {
            return Err(format!("implausible {what} count {v}"));
        }
        Ok(v as usize)
    }
}

/// Deserializes a snapshot produced by [`encode_snapshot`], validating
/// the magic, the checksum, and every structural invariant. The
/// restored sim continues the run bit-identically (property-tested).
pub fn decode_snapshot(bytes: &[u8]) -> Result<ChurnSim, String> {
    let split = bytes
        .len()
        .checked_sub(8)
        .filter(|&b| b >= MAGIC.len())
        .ok_or_else(|| "snapshot shorter than header + trailer".to_string())?;
    let (body, trailer) = bytes.split_at(split);
    let mut sum = [0u8; 8];
    sum.copy_from_slice(trailer);
    if u64::from_le_bytes(sum) != fnv1a64(body) {
        return Err("snapshot checksum mismatch (corrupted or foreign file)".to_string());
    }
    let mut rd = Rd { b: body, at: 0 };
    if rd.take(MAGIC.len())? != MAGIC {
        return Err("bad snapshot magic (not a RIMCHRN1 file)".to_string());
    }
    let family = Family::from_code(rd.u8()?).ok_or("unknown instance family code")?;
    let n0 = rd.count("population")?;
    let seed = rd.u64()?;
    let cfg = ChurnConfig { family, n0, seed };
    if n0 == 0 {
        return Err("target population must be >= 1".to_string());
    }
    let rng = [rd.u64()?, rd.u64()?, rd.u64()?, rd.u64()?];
    let live = rd.u64()?;
    let remaining = rd.u64()?;
    let bootstrapped = rd.u8()? != 0;
    let trace = ChurnTrace::from_parts(cfg, rng, live, remaining, bootstrapped)
        .ok_or("degenerate (all-zero) RNG state")?;
    let mut counts = OpCounts::default();
    counts.edits = rd.u64()?;
    counts.arrivals = rd.u64()?;
    counts.departures = rd.u64()?;
    counts.moves = rd.u64()?;
    counts.relinks = rd.u64()?;
    counts.links_added = rd.u64()?;
    counts.links_removed = rd.u64()?;
    counts.compactions = rd.u64()?;
    let n = rd.count("node")?;
    let mut points = Vec::with_capacity(n);
    for _ in 0..n {
        let (x, y) = (rd.f64()?, rd.f64()?);
        points.push(Point::new(x, y));
    }
    let mut radii = Vec::with_capacity(n);
    for _ in 0..n {
        radii.push(rd.f64()?);
    }
    let mut alive = Vec::with_capacity(n);
    for _ in 0..n {
        alive.push(rd.u8()? != 0);
    }
    let m = rd.count("edge")?;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let (u, v) = (rd.u32()?, rd.u32()?);
        edges.push((u, v));
    }
    let indexed_len = rd.count("indexed prefix")?;
    let radius_bound = rd.f64()?;
    let fixed_radii = rd.u8()? != 0;
    if rd.at != body.len() {
        return Err(format!(
            "{} trailing bytes after the engine state",
            body.len().saturating_sub(rd.at)
        ));
    }
    let engine = DynamicInterference::from_state(DynState {
        points,
        radii,
        alive,
        edges,
        indexed_len,
        radius_bound,
        fixed_radii,
    })?;
    if engine.live_count() as u64 != live {
        return Err(format!(
            "trace population model ({live}) disagrees with the engine ({})",
            engine.live_count()
        ));
    }
    Ok(ChurnSim::from_parts(cfg, trace, engine, counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_after(edits: u64) -> ChurnSim {
        let cfg = ChurnConfig { family: Family::Uniform, n0: 48, seed: 21 };
        let mut s = ChurnSim::new(cfg, edits + 10_000);
        for _ in 0..edits {
            s.step();
        }
        s
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let s = sim_after(700);
        let bytes = encode_snapshot(&s);
        let r = decode_snapshot(&bytes).expect("own snapshot decodes");
        assert_eq!(encode_snapshot(&r), bytes, "re-encode must be identical");
        assert_eq!(r.live_interference(), s.live_interference());
        assert_eq!(r.counts(), s.counts());
        assert_eq!(r.graph_interference(), s.graph_interference());
    }

    #[test]
    fn restored_run_continues_identically() {
        let mut a = sim_after(500);
        let mut b = decode_snapshot(&encode_snapshot(&a)).expect("decodes");
        for i in 0..800 {
            let oa = a.step();
            let ob = b.step();
            assert_eq!(oa, ob, "op stream diverged at +{i}");
            if i % 97 == 0 {
                assert_eq!(a.graph_interference(), b.graph_interference(), "+{i}");
            }
        }
        assert_eq!(a.live_interference(), b.live_interference());
        assert_eq!(encode_snapshot(&a), encode_snapshot(&b), "final snapshots differ");
    }

    #[test]
    fn corruption_is_rejected_loudly() {
        let bytes = encode_snapshot(&sim_after(300));
        assert!(decode_snapshot(&[]).is_err());
        assert!(decode_snapshot(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        for at in [0usize, 8, 20, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            assert!(decode_snapshot(&bad).is_err(), "flip at {at} went unnoticed");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_snapshot(&extra).is_err(), "appended byte went unnoticed");
    }

    #[test]
    fn snapshot_size_is_compact() {
        let s = sim_after(400);
        let bytes = encode_snapshot(&s);
        // ~33 bytes per slot + 8 per edge + fixed header: sanity-bound
        // the encoding so it never silently grows a redundant section.
        let n = s.engine().len();
        let m = s.engine().graph().num_edges();
        assert!(bytes.len() <= 200 + 33 * n + 8 * m, "{} bytes for n={n} m={m}", bytes.len());
    }
}
