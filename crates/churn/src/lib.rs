//! Long-horizon churn workload for the dynamic interference engine.
//!
//! The paper's dynamic setting is where the robust (receiver-centric)
//! interference model earns its keep: nodes arrive, depart, and move,
//! and `I(G')` must stay maintained in `O(affected)` per edit. This
//! crate is the scenario layer that *drives* that engine at service
//! scale:
//!
//! * [`trace::ChurnTrace`] — a deterministic, seeded stream of
//!   [`trace::ChurnOp`]s (arrival / departure / mobility step / link
//!   re-assignment) over one of the five adversarial instance families.
//!   The stream is a pure function of `(config, edit budget)`: replaying
//!   it reproduces every coordinate and every pick bit-for-bit.
//! * [`sim::ChurnSim`] — applies the stream to
//!   [`rim_core::DynamicInterference`], links each arrival to its
//!   nearest live neighbor through a [`grid::LiveGrid`], tombstone-
//!   compacts so a sustained million-edit run keeps flat memory, and
//!   tracks deterministic op counters (the SLO surface next to the
//!   rim-obs latency histograms).
//! * [`snapshot`] — a compact binary encoding of the *entire* sim state
//!   (positions, radii, liveness, edges, pending-overlay boundary, RNG
//!   state, op counters). Restore is exact: a restored run continues
//!   bit-identically to one that never stopped, a property pinned by
//!   the crate's property tests and the replay-differential layer in
//!   `tests/`.
//!
//! Determinism is the contract everywhere: no wall clock, no thread
//! communication, no iteration over unordered containers — every
//! tie-break is total (distance, then id). Latency measurement lives in
//! the callers (CLI and bench harness), never in the hot path.

#![forbid(unsafe_code)]

pub mod grid;
pub mod sim;
pub mod snapshot;
pub mod trace;

pub use grid::LiveGrid;
pub use sim::{ChurnSim, OpCounts};
pub use snapshot::{decode_snapshot, encode_snapshot};
pub use trace::{ChurnConfig, ChurnOp, ChurnTrace, Family};
