//! The churn simulator: applies a [`ChurnTrace`] to the incremental
//! interference engine, keeping memory flat over million-edit horizons.
//!
//! The hot path is [`ChurnSim::apply_edit`]: resolve the op against the
//! sorted live-id list, mutate [`DynamicInterference`] (`O(affected)`),
//! and keep the [`LiveGrid`] in lockstep. Departures tombstone their
//! slot; once dead slots outnumber live ones the sim **compacts** —
//! rebuilds the engine from the live topology with fresh dense ids — so
//! a sustained run's footprint tracks the live population, not the edit
//! count. Compaction is a deterministic function of the edit sequence,
//! so replays (and snapshot restores) reproduce it exactly.
//!
//! Everything observable is deterministic: op resolution uses the
//! sorted id list, nearest-neighbor queries tie-break on `(distance,
//! id)`, and the op counters ([`OpCounts`]) travel inside snapshots.
//! Wall-clock latency is measured by callers (CLI / bench harness),
//! never here.

use crate::grid::LiveGrid;
use crate::trace::{ChurnConfig, ChurnOp, ChurnTrace};
use rim_core::DynamicInterference;
use rim_geom::Point;
use rim_udg::NodeSet;

/// Deterministic op counters — the part of the SLO surface that must be
/// bit-identical under replay (latency histograms are the
/// nondeterministic part and live in rim-obs). Snapshots carry these,
/// so a restored run's final counts equal an uninterrupted run's.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Ops applied (every kind).
    pub edits: u64,
    /// Arrival ops.
    pub arrivals: u64,
    /// Departure ops.
    pub departures: u64,
    /// Mobility ops (depart + re-arrive).
    pub moves: u64,
    /// Relink ops (whether they linked or unlinked).
    pub relinks: u64,
    /// Relinks that inserted an edge.
    pub links_added: u64,
    /// Relinks that removed an edge.
    pub links_removed: u64,
    /// Tombstone compactions (engine rebuilds from the live topology).
    pub compactions: u64,
}

impl OpCounts {
    /// The counters as ordered `(name, value)` pairs — the snapshot
    /// encoding order and the JSONL field order.
    pub fn fields(&self) -> [(&'static str, u64); 8] {
        [
            ("edits", self.edits),
            ("arrivals", self.arrivals),
            ("departures", self.departures),
            ("moves", self.moves),
            ("relinks", self.relinks),
            ("links_added", self.links_added),
            ("links_removed", self.links_removed),
            ("compactions", self.compactions),
        ]
    }
}

/// Churn scenario state: trace stream + incremental engine + live-id
/// bookkeeping. See the module docs.
#[derive(Debug, Clone)]
pub struct ChurnSim {
    cfg: ChurnConfig,
    trace: ChurnTrace,
    engine: DynamicInterference,
    grid: LiveGrid,
    /// Live slot ids, ascending (slot ids are allocated monotonically,
    /// so arrivals append in order and the list stays sorted).
    live_ids: Vec<u32>,
    counts: OpCounts,
}

impl ChurnSim {
    /// A fresh scenario with an `edits`-op budget. The instance starts
    /// empty; the trace's bootstrap phase (its first `n0` ops) grows it
    /// to the target population through ordinary arrivals.
    pub fn new(cfg: ChurnConfig, edits: u64) -> Self {
        ChurnSim {
            cfg,
            trace: ChurnTrace::new(cfg, edits),
            engine: DynamicInterference::new(NodeSet::new(Vec::new())),
            grid: LiveGrid::new(cfg.side(), cfg.n0),
            live_ids: Vec::new(),
            counts: OpCounts::default(),
        }
    }

    /// Reassembles a sim from snapshotted parts (the snapshot codec's
    /// constructor). `engine` must already be restored; the grid and
    /// live-id list are derived from it, never serialized.
    pub(crate) fn from_parts(
        cfg: ChurnConfig,
        trace: ChurnTrace,
        engine: DynamicInterference,
        counts: OpCounts,
    ) -> Self {
        let live_ids: Vec<u32> = (0..engine.len() as u32)
            .filter(|&v| engine.is_live(v as usize))
            .collect();
        let mut grid = LiveGrid::new(cfg.side(), cfg.n0);
        for &v in &live_ids {
            grid.insert(v, engine.position(v as usize));
        }
        ChurnSim { cfg, trace, engine, grid, live_ids, counts }
    }

    /// Scenario configuration.
    pub fn config(&self) -> ChurnConfig {
        self.cfg
    }

    /// The maintained engine (counts, histogram, `I(G')`).
    pub fn engine(&self) -> &DynamicInterference {
        &self.engine
    }

    /// The trace stream (for snapshotting its parts).
    pub fn trace(&self) -> &ChurnTrace {
        &self.trace
    }

    /// Deterministic op counters.
    pub fn counts(&self) -> &OpCounts {
        &self.counts
    }

    /// Live node count.
    pub fn live_count(&self) -> usize {
        self.live_ids.len()
    }

    /// Ops left in the trace budget.
    pub fn remaining(&self) -> u64 {
        self.trace.remaining()
    }

    /// Extends the trace budget by `extra` ops (see
    /// [`ChurnTrace::extend_budget`]) — how a run resumed from an
    /// end-of-budget snapshot keeps going.
    pub fn extend_budget(&mut self, extra: u64) {
        self.trace.extend_budget(extra);
    }

    /// Current `I(G')` — `O(1)` from the engine's histogram.
    pub fn graph_interference(&self) -> usize {
        self.engine.graph_interference()
    }

    /// The live interference vector in ascending slot-id order, paired
    /// with the ids: the replay-equality surface the differential tests
    /// compare (dead slots carry no information).
    pub fn live_interference(&self) -> Vec<(u32, u32)> {
        self.live_ids
            .iter()
            .map(|&v| (v, self.engine.interference_at(v as usize) as u32))
            .collect()
    }

    /// One deterministic checkpoint record as a JSONL object — the
    /// metrics surface the CLI writes and the determinism tests compare
    /// byte-for-byte. Deliberately excludes anything nondeterministic
    /// (latency lives in rim-obs, reported separately).
    pub fn checkpoint_record(&self) -> String {
        let c = self.counts();
        let mut s = format!(
            "{{\"record\":\"churn_checkpoint\",\"family\":\"{}\",\"n0\":{},\"seed\":{},\
             \"edit\":{},\"live\":{},\"slots\":{},\"max_interference\":{}",
            self.cfg.family,
            self.cfg.n0,
            self.cfg.seed,
            c.edits,
            self.live_count(),
            self.engine.len(),
            self.graph_interference(),
        );
        for (name, v) in c.fields() {
            if name != "edits" {
                s.push_str(&format!(",\"{name}\":{v}"));
            }
        }
        s.push('}');
        s
    }

    /// Draws the next op from the trace and applies it. Returns the op,
    /// or `None` when the budget is exhausted.
    pub fn step(&mut self) -> Option<ChurnOp> {
        let op = self.trace.next()?;
        self.apply_edit(op);
        debug_assert_eq!(
            self.trace.live_model(),
            self.live_ids.len() as u64,
            "trace population model diverged from the sim"
        );
        Some(op)
    }

    /// Runs the whole remaining budget; returns how many ops ran.
    pub fn run_to_end(&mut self) -> u64 {
        let mut n = 0;
        while self.step().is_some() {
            n += 1;
        }
        n
    }

    /// Applies one churn op — the hot path. `O(affected)` through the
    /// engine, plus an expected-`O(1)` grid query; no wall clock, no
    /// randomness (the op carries every draw).
    pub fn apply_edit(&mut self, op: ChurnOp) {
        self.counts.edits += 1;
        match op {
            ChurnOp::Arrival { x, y } => {
                self.counts.arrivals += 1;
                rim_obs::counter_add("churn.arrivals", 1);
                self.arrive(Point::new(x, y));
            }
            ChurnOp::Departure { pick } => {
                self.counts.departures += 1;
                rim_obs::counter_add("churn.departures", 1);
                if let Some(v) = self.resolve(pick) {
                    self.depart(v);
                }
            }
            ChurnOp::Move { pick, x, y } => {
                self.counts.moves += 1;
                rim_obs::counter_add("churn.moves", 1);
                if let Some(v) = self.resolve(pick) {
                    self.depart(v);
                    self.arrive(Point::new(x, y));
                }
            }
            ChurnOp::Relink { pick, k } => {
                self.counts.relinks += 1;
                rim_obs::counter_add("churn.relinks", 1);
                if let Some(v) = self.resolve(pick) {
                    self.relink(v, k as usize);
                }
            }
        }
        self.maybe_compact();
    }

    /// Resolves a raw pick against the sorted live-id list.
    // rim-lint: allow(panic-freedom) — index is pick modulo the (checked nonempty) list length
    fn resolve(&self, pick: u64) -> Option<u32> {
        if self.live_ids.is_empty() {
            return None;
        }
        Some(self.live_ids[(pick % self.live_ids.len() as u64) as usize])
    }

    /// A node arrives: new engine slot, one link to the nearest live
    /// node (if any), grid + id-list bookkeeping.
    fn arrive(&mut self, p: Point) -> u32 {
        let v = self.engine.insert_node(p) as u32;
        let engine = &self.engine;
        if let Some((_, w)) = self.grid.nearest_live(p, None, |id| engine.position(id as usize)) {
            self.engine.insert_edge(v as usize, w as usize);
        }
        self.grid.insert(v, p);
        self.live_ids.push(v);
        v
    }

    /// A node departs: engine tombstone + grid + id-list bookkeeping.
    fn depart(&mut self, v: u32) {
        let p = self.engine.position(v as usize);
        self.grid.remove(v, p);
        self.engine.remove_node(v as usize);
        if let Ok(i) = self.live_ids.binary_search(&v) {
            self.live_ids.remove(i);
        }
    }

    /// Toggles the link between `v` and its `k`-th nearest live
    /// neighbor (or the farthest available when fewer than `k` exist) —
    /// the radius-reassignment edit class in link-derived form.
    fn relink(&mut self, v: u32, k: usize) {
        let p = self.engine.position(v as usize);
        let engine = &self.engine;
        let nbrs = self
            .grid
            .nearest_k(p, k, Some(v), |id| engine.position(id as usize));
        if let Some(&(_, w)) = nbrs.last() {
            let (a, b) = (v as usize, w as usize);
            if self.engine.graph().has_edge(a, b) {
                self.engine.remove_edge(a, b);
                self.counts.links_removed += 1;
            } else {
                self.engine.insert_edge(a, b);
                self.counts.links_added += 1;
            }
        }
    }

    /// Rebuilds the engine from the live topology once tombstones
    /// outnumber live nodes (with a floor so small scenarios never
    /// compact): amortized `O(1)` per edit, and the footprint tracks the
    /// live population instead of the edit count. The schedule depends
    /// only on the edit sequence, so replays reproduce it exactly.
    fn maybe_compact(&mut self) {
        let dead = self.engine.len().saturating_sub(self.engine.live_count());
        if dead <= self.engine.live_count().max(256) {
            return;
        }
        self.counts.compactions += 1;
        rim_obs::counter_add("churn.compactions", 1);
        let _span = rim_obs::span("churn.compact");
        let (t, _slots) = self.engine.live_topology();
        self.engine = DynamicInterference::from_topology(&t);
        // live_topology compacts in ascending slot order, which is
        // exactly the order of live_ids — so dense ids 0..live map
        // one-to-one onto the old list and pick resolution is unchanged.
        self.live_ids = (0..self.engine.len() as u32).collect();
        let mut grid = LiveGrid::new(self.cfg.side(), self.cfg.n0);
        for &v in &self.live_ids {
            grid.insert(v, self.engine.position(v as usize));
        }
        self.grid = grid;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Family;

    fn cfg(family: Family, n0: usize, seed: u64) -> ChurnConfig {
        ChurnConfig { family, n0, seed }
    }

    #[test]
    fn replay_is_deterministic() {
        let c = cfg(Family::Uniform, 48, 3);
        let mut a = ChurnSim::new(c, 2_000);
        let mut b = ChurnSim::new(c, 2_000);
        a.run_to_end();
        b.run_to_end();
        assert_eq!(a.live_interference(), b.live_interference());
        assert_eq!(a.counts(), b.counts());
        assert_eq!(a.graph_interference(), b.graph_interference());
    }

    #[test]
    fn population_hovers_near_target() {
        let mut s = ChurnSim::new(cfg(Family::Uniform, 64, 9), 4_000);
        s.run_to_end();
        let live = s.live_count() as i64;
        assert!((live - 64).abs() < 48, "population drifted to {live}");
        assert_eq!(s.counts().edits, 4_000);
        assert_eq!(
            s.counts().arrivals + s.counts().departures + s.counts().moves + s.counts().relinks,
            4_000
        );
    }

    #[test]
    fn compaction_keeps_slots_bounded_and_state_exact() {
        // A tiny population with heavy churn forces many compactions.
        let mut s = ChurnSim::new(cfg(Family::Uniform, 24, 5), 12_000);
        let mut checked = 0;
        while let Some(_op) = s.step() {
            if s.counts().edits % 1_500 == 0 {
                // Engine slots must stay within compaction bounds:
                // dead <= max(live, 256) after every edit.
                let dead = s.engine().len() - s.engine().live_count();
                assert!(dead <= s.engine().live_count().max(256), "tombstones leaked: {dead}");
                // And the maintained counts must match a from-scratch
                // recompute of the live topology.
                let (t, slots) = s.engine().live_topology();
                let want = rim_core::receiver::interference_vector_naive(&t);
                let got: Vec<usize> = slots
                    .iter()
                    .map(|&v| s.engine().interference_at(v))
                    .collect();
                assert_eq!(got, want, "diverged at edit {}", s.counts().edits);
                checked += 1;
            }
        }
        assert!(s.counts().compactions > 0, "scenario never compacted");
        assert!(checked >= 4, "checkpoints did not run");
    }

    #[test]
    fn moves_preserve_population_and_relinks_toggle() {
        let mut s = ChurnSim::new(cfg(Family::Clustered, 40, 11), 3_000);
        s.run_to_end();
        let c = s.counts();
        assert!(c.moves > 0 && c.relinks > 0, "op mix degenerate: {c:?}");
        assert_eq!(c.links_added + c.links_removed, c.relinks);
        assert_eq!(
            s.live_count() as u64,
            c.arrivals - c.departures,
            "moves must be population-neutral"
        );
    }

    #[test]
    fn all_families_run_and_stay_consistent() {
        for family in Family::ALL {
            let mut s = ChurnSim::new(cfg(family, 32, 17), 1_200);
            s.run_to_end();
            let (t, slots) = s.engine().live_topology();
            let want = rim_core::receiver::interference_vector_naive(&t);
            let got: Vec<usize> = slots.iter().map(|&v| s.engine().interference_at(v)).collect();
            assert_eq!(got, want, "family {family} diverged");
        }
    }
}
