//! Uniform bucket grid over the live node set, for nearest-live-node
//! queries during churn.
//!
//! The engine's own `SpatialIndex` covers *slots* (including tombstoned
//! departures) and rebuilds lazily; arrivals need the nearest **live**
//! node *now*, so the sim maintains this small secondary grid keyed by
//! live ids. Two properties matter:
//!
//! * **Determinism independent of history.** Bucket contents are
//!   unordered (removal swap-pops), so every query tie-breaks by
//!   `(distance, id)` — a total order. A grid rebuilt from scratch (after
//!   compaction or snapshot restore) answers bit-identically to one that
//!   evolved in place, which is what makes replay exact without
//!   serializing the grid.
//! * **O(1) expected updates.** The cell size targets one expected live
//!   node per cell at the scenario's population; adversarial families
//!   (collinear, duplicates) degrade gracefully to short linear scans at
//!   the test sizes they run at.

use rim_geom::Point;

/// Bucket grid over `[0, side]²` (out-of-domain points clamp to the
/// border cells). Stores ids only; positions live in the engine and are
/// supplied per query.
#[derive(Debug, Clone)]
pub struct LiveGrid {
    /// Cell side length.
    cell: f64,
    /// Cells per axis.
    per_axis: usize,
    /// `per_axis²` buckets of live ids, row-major.
    cells: Vec<Vec<u32>>,
    /// Total live ids stored.
    len: usize,
}

impl LiveGrid {
    /// An empty grid over `[0, side]²` sized for about `expected_n` live
    /// nodes (≈1 per cell).
    pub fn new(side: f64, expected_n: usize) -> Self {
        assert!(side > 0.0 && side.is_finite(), "grid domain must be positive");
        let per_axis = ((expected_n as f64).sqrt().ceil() as usize).clamp(1, 4096);
        LiveGrid {
            cell: side / per_axis as f64,
            per_axis,
            cells: vec![Vec::new(); per_axis * per_axis],
            len: 0,
        }
    }

    /// Number of live ids stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bucket coordinates of `p`, clamped into the grid.
    fn cell_of(&self, p: Point) -> (usize, usize) {
        let max = (self.per_axis - 1) as f64;
        let cx = (p.x / self.cell).floor().clamp(0.0, max) as usize;
        let cy = (p.y / self.cell).floor().clamp(0.0, max) as usize;
        (cx, cy)
    }

    /// Inserts a live id at its position.
    // rim-lint: allow(panic-freedom) — cell_of clamps into bounds
    pub fn insert(&mut self, id: u32, p: Point) {
        let (cx, cy) = self.cell_of(p);
        self.cells[cy * self.per_axis + cx].push(id);
        self.len += 1;
    }

    /// Removes a live id (looked up at its position); returns whether it
    /// was present.
    // rim-lint: allow(panic-freedom) — cell_of clamps into bounds; swap_remove index comes from position()
    pub fn remove(&mut self, id: u32, p: Point) -> bool {
        let (cx, cy) = self.cell_of(p);
        let bucket = &mut self.cells[cy * self.per_axis + cx];
        match bucket.iter().position(|&x| x == id) {
            Some(i) => {
                bucket.swap_remove(i);
                self.len -= 1;
                true
            }
            None => false,
        }
    }

    /// The `k` nearest stored ids to `p` (excluding `exclude`), sorted
    /// ascending by `(distance, id)` — a total order, so the result is
    /// independent of bucket ordering and therefore of grid history.
    /// Returns fewer than `k` entries if fewer live nodes exist.
    ///
    /// `pos` supplies positions (the engine owns them).
    // rim-lint: allow(panic-freedom) — ring scan indices are clamped to the grid bounds
    pub fn nearest_k(
        &self,
        p: Point,
        k: usize,
        exclude: Option<u32>,
        pos: impl Fn(u32) -> Point,
    ) -> Vec<(f64, u32)> {
        let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        if k == 0 || self.len == 0 {
            return best;
        }
        let (pcx, pcy) = self.cell_of(p);
        let (pcx, pcy) = (pcx as i64, pcy as i64);
        let last = (self.per_axis - 1) as i64;
        for ring in 0..=(self.per_axis as i64) {
            // Once k candidates are held, no cell whose nearest point is
            // beyond the current k-th distance can improve the answer.
            // The nearest point of a ring-`r` cell is ≥ (r−1)·cell away.
            if best.len() == k {
                if let Some(&(kd, _)) = best.last() {
                    if (ring - 1) as f64 * self.cell > kd {
                        break;
                    }
                }
            }
            let (x0, x1) = ((pcx - ring).max(0), (pcx + ring).min(last));
            let (y0, y1) = ((pcy - ring).max(0), (pcy + ring).min(last));
            if pcx - ring > last || pcx + ring < 0 || pcy - ring > last || pcy + ring < 0 {
                continue;
            }
            for cy in y0..=y1 {
                for cx in x0..=x1 {
                    // Border of the ring only: the interior was scanned
                    // on earlier rings.
                    if ring > 0
                        && (cx - pcx).abs() != ring
                        && (cy - pcy).abs() != ring
                    {
                        continue;
                    }
                    for &id in &self.cells[(cy as usize) * self.per_axis + cx as usize] {
                        if Some(id) == exclude {
                            continue;
                        }
                        let d = pos(id).dist(&p);
                        let cand = (d, id);
                        // Total (distance, id) order; strict-less keeps
                        // the result unique under coincident nodes.
                        let at = best
                            .iter()
                            .position(|&(bd, bi)| {
                                d < bd || (d.total_cmp(&bd).is_eq() && id < bi)
                            })
                            .unwrap_or(best.len());
                        if at < k {
                            best.insert(at, cand);
                            best.truncate(k);
                        }
                    }
                }
            }
        }
        best
    }

    /// The single nearest stored id to `p` (excluding `exclude`), with
    /// its distance.
    pub fn nearest_live(
        &self,
        p: Point,
        exclude: Option<u32>,
        pos: impl Fn(u32) -> Point,
    ) -> Option<(f64, u32)> {
        self.nearest_k(p, 1, exclude, pos).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.9),
            Point::new(0.5, 0.52),
            Point::new(0.5, 0.52), // exact duplicate of 2
            Point::new(0.52, 0.5),
            Point::new(3.5, 3.5),
        ]
    }

    fn grid_with(pts: &[Point]) -> LiveGrid {
        let mut g = LiveGrid::new(4.0, pts.len());
        for (i, &p) in pts.iter().enumerate() {
            g.insert(i as u32, p);
        }
        g
    }

    /// Brute-force oracle with the same (distance, id) total order.
    fn oracle_k(pts: &[Point], q: Point, k: usize, exclude: Option<u32>) -> Vec<(f64, u32)> {
        let mut all: Vec<(f64, u32)> = pts
            .iter()
            .enumerate()
            .filter(|&(i, _)| Some(i as u32) != exclude)
            .map(|(i, p)| (p.dist(&q), i as u32))
            .collect();
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = pts();
        let g = grid_with(&pts);
        for (qi, &q) in pts.iter().enumerate() {
            for k in 1..=4 {
                let got = g.nearest_k(q, k, Some(qi as u32), |id| pts[id as usize]);
                let want = oracle_k(&pts, q, k, Some(qi as u32));
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.1, w.1, "query {qi} k={k}: {got:?} vs {want:?}");
                }
            }
        }
    }

    #[test]
    fn duplicate_positions_tie_break_by_id() {
        let pts = pts();
        let g = grid_with(&pts);
        // Query from the duplicate pair: the *other* duplicate (d = 0)
        // must win, lower id first when both are excluded-equal.
        let got = g.nearest_live(Point::new(0.5, 0.52), Some(3), |id| pts[id as usize]);
        assert_eq!(got.map(|(_, id)| id), Some(2));
        let got = g.nearest_live(Point::new(0.5, 0.52), Some(2), |id| pts[id as usize]);
        assert_eq!(got.map(|(_, id)| id), Some(3));
    }

    #[test]
    fn insertion_order_is_immaterial() {
        let pts = pts();
        let fwd = grid_with(&pts);
        let mut rev = LiveGrid::new(4.0, pts.len());
        for (i, &p) in pts.iter().enumerate().rev() {
            rev.insert(i as u32, p);
        }
        let q = Point::new(0.45, 0.45);
        assert_eq!(
            fwd.nearest_k(q, 3, None, |id| pts[id as usize]),
            rev.nearest_k(q, 3, None, |id| pts[id as usize]),
        );
    }

    #[test]
    fn remove_then_query_skips_the_removed() {
        let pts = pts();
        let mut g = grid_with(&pts);
        assert!(g.remove(2, pts[2]));
        assert!(!g.remove(2, pts[2]), "double remove");
        assert_eq!(g.len(), pts.len() - 1);
        let got = g.nearest_live(Point::new(0.5, 0.52), None, |id| pts[id as usize]);
        assert_eq!(got.map(|(_, id)| id), Some(3), "the duplicate survivor wins");
    }

    #[test]
    fn out_of_domain_points_clamp() {
        let mut g = LiveGrid::new(1.0, 4);
        g.insert(0, Point::new(-5.0, -5.0));
        g.insert(1, Point::new(9.0, 9.0));
        let all = [Point::new(-5.0, -5.0), Point::new(9.0, 9.0)];
        let got = g.nearest_live(Point::new(0.0, 0.0), None, |id| all[id as usize]);
        assert_eq!(got.map(|(_, id)| id), Some(0));
    }

    #[test]
    fn empty_grid_answers_empty() {
        let g = LiveGrid::new(1.0, 16);
        assert!(g.is_empty());
        assert_eq!(g.nearest_live(Point::ORIGIN, None, |_| Point::ORIGIN), None);
    }
}
