//! Seeded churn traces: a deterministic op stream over an instance family.
//!
//! A [`ChurnTrace`] is an [`Iterator`] of [`ChurnOp`]s drawn from one
//! `rim_rng::SmallRng`. The stream tracks its own live-population model
//! (arrivals add one, departures remove one, moves and relinks are
//! neutral) and biases the arrival/departure weights toward the target
//! population `n0`, so long runs hover around `n0` live nodes without
//! ever consulting the simulator — which keeps the trace a pure
//! function of `(config, edit budget)` and makes `(seed, trace)` replay
//! exact by construction.
//!
//! Node picks are emitted as raw `u64`s and resolved by the simulator
//! against its sorted live-id list (`pick % live`); both sides maintain
//! the same population count, so resolution never fails mid-stream.

use rim_geom::Point;
use rim_rng::SmallRng;

/// The five adversarial instance families the differential suite uses,
/// here as *churn* families: the family shapes both the bootstrap
/// instance and every later arrival/move coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Uniform in the `side × side` square at unit density — the
    /// Devroye–Morin regime where max `I` must track `Θ(√(log n))`.
    Uniform,
    /// Gaussian clusters around seed-derived centers.
    Clustered,
    /// Exponentially multiscale positions on a line (the `A_exp` shape:
    /// nested gaps spanning ~7 orders of magnitude).
    ExpChain,
    /// Dense collinear instance.
    Collinear,
    /// Coordinates snapped to a coarse lattice, so exact duplicates (and
    /// zero-length links) occur constantly.
    Duplicate,
}

impl Family {
    /// Every family, in the canonical order used by tests and encoding.
    pub const ALL: [Family; 5] = [
        Family::Uniform,
        Family::Clustered,
        Family::ExpChain,
        Family::Collinear,
        Family::Duplicate,
    ];

    /// Stable wire/CLI tag.
    pub fn tag(self) -> &'static str {
        match self {
            Family::Uniform => "uniform",
            Family::Clustered => "clustered",
            Family::ExpChain => "exp-chain",
            Family::Collinear => "collinear",
            Family::Duplicate => "duplicate",
        }
    }

    /// Parses a CLI/wire tag. (Explicit loop, not `Iterator::find`: the
    /// lint call-graph resolver is name-based and would tie a `.find(…)`
    /// call on the snapshot-decode path to `UnionFind::find`.)
    pub fn parse(s: &str) -> Option<Family> {
        for f in Family::ALL {
            if f.tag() == s {
                return Some(f);
            }
        }
        None
    }

    /// Stable single-byte encoding for snapshots.
    pub fn code(self) -> u8 {
        match self {
            Family::Uniform => 0,
            Family::Clustered => 1,
            Family::ExpChain => 2,
            Family::Collinear => 3,
            Family::Duplicate => 4,
        }
    }

    /// Inverse of [`Family::code`]. (Explicit loop for the same reason
    /// as [`Family::parse`].)
    pub fn from_code(c: u8) -> Option<Family> {
        for f in Family::ALL {
            if f.code() == c {
                return Some(f);
            }
        }
        None
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Static parameters of a churn scenario. Everything else — the op
/// stream, the coordinates, the picks — derives deterministically from
/// these three values plus the edit budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnConfig {
    /// Instance family.
    pub family: Family,
    /// Target live population; the trace bootstraps to `n0` and then
    /// biases arrivals/departures to hover around it.
    pub n0: usize,
    /// Root seed of the op stream.
    pub seed: u64,
}

impl ChurnConfig {
    /// Side length of the scenario domain: `√n0`, i.e. unit density for
    /// the uniform family (the envelope regime); the other families map
    /// their coordinates into the same square.
    pub fn side(&self) -> f64 {
        (self.n0 as f64).sqrt().max(1.0)
    }
}

/// One churn edit. Coordinates are final positions (already
/// family-shaped); picks are raw draws the simulator resolves against
/// its sorted live-id list as `pick % live`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnOp {
    /// A node arrives at `(x, y)` and links to its nearest live node.
    Arrival {
        /// Arrival x coordinate.
        x: f64,
        /// Arrival y coordinate.
        y: f64,
    },
    /// A live node departs with all its links.
    Departure {
        /// Raw pick, resolved as `pick % live`.
        pick: u64,
    },
    /// A mobility step: the picked node departs and re-arrives at
    /// `(x, y)` (positions are immutable in the engine, so motion is
    /// modeled as depart + arrive; the node gets a fresh slot id).
    Move {
        /// Raw pick, resolved as `pick % live`.
        pick: u64,
        /// Destination x coordinate.
        x: f64,
        /// Destination y coordinate.
        y: f64,
    },
    /// Radius re-assignment (Korman's bounded-radius edit class, in
    /// link-derived form): toggle the link between the picked node and
    /// its `k`-th nearest live neighbor, which moves the picked node's
    /// radius `r_u = max` incident weight up or down.
    Relink {
        /// Raw pick, resolved as `pick % live`.
        pick: u64,
        /// Neighbor rank to toggle against, `1..=4`.
        k: u8,
    },
}

/// Deterministic op stream — see the module docs. Construct with
/// [`ChurnTrace::new`], resume mid-stream with [`ChurnTrace::from_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnTrace {
    cfg: ChurnConfig,
    rng: SmallRng,
    /// Gaussian cluster centers ([`Family::Clustered`] only); derived
    /// from the seed alone, so never serialized.
    centers: Vec<Point>,
    /// The stream's own live-population model.
    live: u64,
    /// Ops left in the budget.
    remaining: u64,
    /// Whether the initial ramp to `n0` live nodes has completed; until
    /// then every op is an arrival.
    bootstrapped: bool,
}

/// Cluster-center count for [`Family::Clustered`]: enough clusters that
/// they stay distinct, few enough that each is dense.
fn cluster_count(n0: usize) -> usize {
    (n0 / 64).clamp(1, 64)
}

impl ChurnTrace {
    /// Opens the op stream for `cfg` with a budget of `edits` ops
    /// (bootstrap arrivals included).
    pub fn new(cfg: ChurnConfig, edits: u64) -> Self {
        assert!(cfg.n0 >= 1, "target population must be >= 1");
        // Centers come from a separate splitmix expansion so they are a
        // pure function of the seed, independent of stream position.
        let mut crng = SmallRng::seed_from_u64(cfg.seed ^ 0xC1E5_7E25_34DE_7A1B);
        let side = cfg.side();
        let centers = match cfg.family {
            Family::Clustered => (0..cluster_count(cfg.n0))
                .map(|_| Point::new(crng.gen::<f64>() * side, crng.gen::<f64>() * side))
                .collect(),
            _ => Vec::new(),
        };
        ChurnTrace {
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            centers,
            live: 0,
            remaining: edits,
            bootstrapped: false,
        }
    }

    /// Rebuilds a stream mid-flight from snapshotted parts; returns
    /// `None` for a degenerate (all-zero) RNG state.
    pub fn from_parts(
        cfg: ChurnConfig,
        rng_state: [u64; 4],
        live: u64,
        remaining: u64,
        bootstrapped: bool,
    ) -> Option<Self> {
        let rng = SmallRng::from_state(rng_state)?;
        let mut t = ChurnTrace::new(cfg, remaining);
        t.rng = rng;
        t.live = live;
        t.bootstrapped = bootstrapped;
        Some(t)
    }

    /// The stream's configuration.
    pub fn config(&self) -> ChurnConfig {
        self.cfg
    }

    /// Snapshot of the stream state: `(rng_state, live, remaining,
    /// bootstrapped)` — exactly what [`ChurnTrace::from_parts`] takes.
    pub fn parts(&self) -> ([u64; 4], u64, u64, bool) {
        (self.rng.state(), self.live, self.remaining, self.bootstrapped)
    }

    /// The stream's live-population model (mirrors the simulator's
    /// live count at every step — asserted there).
    pub fn live_model(&self) -> u64 {
        self.live
    }

    /// Ops left in the budget.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Extends the budget by `extra` ops. The op stream is a pure
    /// function of `(rng state, live, bootstrapped)` — the budget only
    /// truncates it — so extending a resumed stream replays exactly the
    /// suffix an uninterrupted longer-budget stream would produce.
    pub fn extend_budget(&mut self, extra: u64) {
        self.remaining = self.remaining.saturating_add(extra);
    }

    /// One family-shaped coordinate pair.
    // rim-lint: allow(panic-freedom) — Clustered (the only arm touching centers) allocates >= 1 center
    fn position(&mut self) -> (f64, f64) {
        let side = self.cfg.side();
        let u1 = self.rng.gen::<f64>();
        let u2 = self.rng.gen::<f64>();
        match self.cfg.family {
            Family::Uniform => (u1 * side, u2 * side),
            Family::Clustered => {
                let k = self.centers.len() as f64;
                let scaled = u1 * k;
                let c = (scaled as usize).min(self.centers.len() - 1);
                // The fractional part is an independent uniform; turn it
                // into a Rayleigh radius so (r, θ) is an isotropic
                // Gaussian around the center, σ = side/20.
                let frac = (scaled - c as f64).clamp(0.0, 1.0 - 1e-12);
                let r = (side / 20.0) * (-2.0 * (1.0 - frac).ln()).sqrt();
                let a = std::f64::consts::TAU * u2;
                let p = self.centers[c];
                (p.x + r * a.cos(), p.y + r * a.sin())
            }
            // 2^-24 spans ~7 orders of magnitude of pairwise gaps.
            Family::ExpChain => (side * (2.0f64).powf(-(u1 * 24.0)), 0.0),
            Family::Collinear => (u1 * side, 0.0),
            Family::Duplicate => (
                (u1 * 16.0).floor() / 16.0 * side,
                (u2 * 8.0).floor() / 8.0 * side * 0.25,
            ),
        }
    }

    fn arrival(&mut self) -> ChurnOp {
        let (x, y) = self.position();
        ChurnOp::Arrival { x, y }
    }

    fn draw_op(&mut self) -> ChurnOp {
        if self.live == 0 || !self.bootstrapped {
            // Initial ramp (and recovery from an empty instance).
            self.live += 1;
            if self.live >= self.cfg.n0 as u64 {
                self.bootstrapped = true;
            }
            return self.arrival();
        }
        // Deficit-biased weights pull the population toward n0; the
        // rest splits evenly between mobility and relinking.
        let deficit = (self.cfg.n0 as f64 - self.live as f64) / self.cfg.n0 as f64;
        let p_arr = (0.12 + 0.4 * deficit).clamp(0.02, 0.75);
        let p_dep = (0.12 - 0.4 * deficit).clamp(0.02, 0.75);
        let r = self.rng.gen::<f64>();
        if r < p_arr {
            self.live += 1;
            self.arrival()
        } else if r < p_arr + p_dep {
            self.live -= 1;
            ChurnOp::Departure { pick: self.rng.next_u64() }
        } else if r < p_arr + p_dep + (1.0 - p_arr - p_dep) * 0.5 {
            let pick = self.rng.next_u64();
            let (x, y) = self.position();
            ChurnOp::Move { pick, x, y }
        } else {
            ChurnOp::Relink {
                pick: self.rng.next_u64(),
                k: (self.rng.next_u64() % 4) as u8 + 1,
            }
        }
    }
}

impl Iterator for ChurnTrace {
    type Item = ChurnOp;

    fn next(&mut self) -> Option<ChurnOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.draw_op())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (r, Some(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(family: Family) -> ChurnConfig {
        ChurnConfig { family, n0: 64, seed: 7 }
    }

    #[test]
    fn stream_is_deterministic_and_budgeted() {
        let a: Vec<ChurnOp> = ChurnTrace::new(cfg(Family::Uniform), 500).collect();
        let b: Vec<ChurnOp> = ChurnTrace::new(cfg(Family::Uniform), 500).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let c: Vec<ChurnOp> = ChurnTrace::new(ChurnConfig { seed: 8, ..cfg(Family::Uniform) }, 500)
            .collect();
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[test]
    fn bootstrap_ramps_to_target_then_hovers() {
        let mut t = ChurnTrace::new(cfg(Family::Uniform), 5_000);
        for (i, op) in t.by_ref().take(64).enumerate() {
            assert!(matches!(op, ChurnOp::Arrival { .. }), "op {i} during bootstrap");
        }
        for _ in t.by_ref() {}
        let live = t.live_model() as i64;
        assert!((live - 64).abs() < 48, "population drifted to {live}");
    }

    #[test]
    fn parts_roundtrip_resumes_the_same_stream() {
        let mut a = ChurnTrace::new(cfg(Family::Clustered), 1_000);
        for _ in 0..257 {
            a.next();
        }
        let (rng, live, remaining, boot) = a.parts();
        let b = ChurnTrace::from_parts(cfg(Family::Clustered), rng, live, remaining, boot)
            .expect("live rng state");
        let rest_a: Vec<ChurnOp> = a.collect();
        let rest_b: Vec<ChurnOp> = b.collect();
        assert_eq!(rest_a, rest_b, "resumed stream diverged");
    }

    #[test]
    fn family_tags_and_codes_roundtrip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.tag()), Some(f));
            assert_eq!(Family::from_code(f.code()), Some(f));
        }
        assert_eq!(Family::parse("nope"), None);
        assert_eq!(Family::from_code(200), None);
    }

    #[test]
    fn duplicate_family_actually_duplicates() {
        let ops: Vec<ChurnOp> = ChurnTrace::new(cfg(Family::Duplicate), 200).collect();
        let mut coords: Vec<(u64, u64)> = ops
            .iter()
            .filter_map(|op| match op {
                ChurnOp::Arrival { x, y } => Some((x.to_bits(), y.to_bits())),
                _ => None,
            })
            .collect();
        let total = coords.len();
        coords.sort_unstable();
        coords.dedup();
        assert!(coords.len() < total, "no coincident arrivals in {total} draws");
    }

    #[test]
    fn line_families_stay_on_the_line() {
        for fam in [Family::Collinear, Family::ExpChain] {
            for op in ChurnTrace::new(cfg(fam), 300) {
                if let ChurnOp::Arrival { y, .. } | ChurnOp::Move { y, .. } = op {
                    assert_eq!(y.to_bits(), 0, "{fam} arrival off the line");
                }
            }
        }
    }
}
