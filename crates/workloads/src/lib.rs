//! Deterministic workload generators for the `rim` experiments.
//!
//! Every generator takes an explicit `u64` seed and uses a splittable
//! small RNG, so every experiment in the benchmark harness is exactly
//! reproducible. Generators come in two flavours:
//!
//! * 2-D [`NodeSet`]s — [`uniform_square`], [`gaussian_clusters`],
//!   [`grid_lattice`], and the Figure 1 instance [`fig1_instance`];
//!   plus the streaming million-node variants [`uniform_square_stream`]
//!   and [`uniform_soa`], which draw the same coordinates without ever
//!   materializing a `Vec<Point>`;
//! * 1-D [`HighwayInstance`]s — [`uniform_highway`],
//!   [`clustered_highway`], and [`fragmented_exponential`] (the
//!   worst-case-style input for `A_apx`).

#![forbid(unsafe_code)]

use rim_rng::SmallRng;
use rim_geom::Point;
use rim_highway::HighwayInstance;
use rim_udg::NodeSet;

/// `n` points uniform in the `side × side` square.
pub fn uniform_square(n: usize, side: f64, seed: u64) -> NodeSet {
    assert!(side > 0.0);
    let mut stream = uniform_square_stream(n, side, seed);
    NodeSet::new((0..n).map(|_| stream.next_point()).collect())
}

/// Streaming source of `n` uniform points in the `side × side` square —
/// the million-node generator: points are drawn one at a time, so a
/// caller filling a columnar store ([`uniform_soa`]) never materializes
/// an intermediate `Vec<Point>` (or any per-node structure at all).
///
/// Draw order is pinned: point `i` consumes RNG draws `2i` (x) and
/// `2i + 1` (y), which makes the stream produce bit-identical
/// coordinates to [`uniform_square`] with the same `(n, side, seed)` —
/// a tested contract, so streaming and materialized pipelines can be
/// differential-tested against each other.
#[derive(Debug, Clone)]
pub struct UniformStream {
    rng: SmallRng,
    side: f64,
    remaining: usize,
}

impl UniformStream {
    /// Next point of the stream. Panics if the stream is exhausted —
    /// use the [`Iterator`] impl for checked draws.
    // rim-lint: allow(panic-freedom) — documented contract; the Iterator impl is the checked path
    // rim-lint: allow(no-unwrap-in-lib) — documented contract; the Iterator impl is the checked path
    pub fn next_point(&mut self) -> Point {
        assert!(self.remaining > 0, "uniform stream exhausted");
        self.remaining -= 1;
        let x = self.rng.gen::<f64>() * self.side;
        let y = self.rng.gen::<f64>() * self.side;
        Point::new(x, y)
    }

    /// Points not yet drawn.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for UniformStream {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.remaining == 0 {
            None
        } else {
            Some(self.next_point())
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Opens a [`UniformStream`] over `n` uniform points in the
/// `side × side` square.
pub fn uniform_square_stream(n: usize, side: f64, seed: u64) -> UniformStream {
    assert!(side > 0.0);
    UniformStream {
        rng: SmallRng::seed_from_u64(seed),
        side,
        remaining: n,
    }
}

/// `n` uniform points streamed straight into a structure-of-arrays
/// store: two flat `f64` columns and nothing else, the input layout of
/// the streaming interference kernel (`rim_core::stream`). Coordinates
/// are bit-identical to [`uniform_square`] with the same arguments.
pub fn uniform_soa(n: usize, side: f64, seed: u64) -> rim_geom::SoaPoints {
    let mut soa = rim_geom::SoaPoints::with_capacity(n);
    for p in uniform_square_stream(n, side, seed) {
        soa.push(p.x, p.y);
    }
    soa
}

/// `k` Gaussian clusters of `per_cluster` points each; cluster centers
/// uniform in the `side × side` square, point offsets normal with the
/// given standard deviation (Box–Muller; no external distributions
/// crate needed).
pub fn gaussian_clusters(
    k: usize,
    per_cluster: usize,
    side: f64,
    std_dev: f64,
    seed: u64,
) -> NodeSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let normal = move |rng: &mut SmallRng| {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let mut pts = Vec::with_capacity(k * per_cluster);
    for _ in 0..k {
        let cx = rng.gen::<f64>() * side;
        let cy = rng.gen::<f64>() * side;
        for _ in 0..per_cluster {
            pts.push(Point::new(
                cx + normal(&mut rng) * std_dev,
                cy + normal(&mut rng) * std_dev,
            ));
        }
    }
    NodeSet::new(pts)
}

/// A `rows × cols` lattice with the given spacing, optionally jittered by
/// `jitter` (uniform in `[-jitter, jitter]` per coordinate).
pub fn grid_lattice(rows: usize, cols: usize, spacing: f64, jitter: f64, seed: u64) -> NodeSet {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let jx = if jitter > 0.0 { rng.gen_range(-jitter..=jitter) } else { 0.0 };
            let jy = if jitter > 0.0 { rng.gen_range(-jitter..=jitter) } else { 0.0 };
            pts.push(Point::new(c as f64 * spacing + jx, r as f64 * spacing + jy));
        }
    }
    NodeSet::new(pts)
}

/// The Figure 1 instance: a homogeneous cluster of `n − 1` nodes (uniform
/// in a disk of diameter `cluster_diameter` ≪ 1) plus one outlier to the
/// right whose only in-range neighbor territory is the cluster edge.
///
/// Adding the outlier forces whatever topology-control algorithm runs on
/// it to create one long link — which drags the *sender-centric* measure
/// up to `n`, while the receiver-centric measure grows by `O(1)`.
///
/// Returns `(cluster_only, with_outlier)` so robustness experiments can
/// evaluate both sides of the arrival.
pub fn fig1_instance(n: usize, cluster_diameter: f64, seed: u64) -> (NodeSet, NodeSet) {
    assert!(n >= 3);
    assert!(cluster_diameter > 0.0 && cluster_diameter < 0.5);
    let mut rng = SmallRng::seed_from_u64(seed);
    let r = cluster_diameter / 2.0;
    let mut pts = Vec::with_capacity(n);
    for _ in 0..n - 1 {
        // Rejection-sample the disk centered at (r, 0).
        loop {
            let x = rng.gen_range(-1.0f64..=1.0);
            let y = rng.gen_range(-1.0f64..=1.0);
            if x * x + y * y <= 1.0 {
                pts.push(Point::new(r + x * r, y * r));
                break;
            }
        }
    }
    let cluster = NodeSet::new(pts.clone());
    // Outlier at distance just under 1 from the cluster's rightmost edge:
    // in range of (at least) the rightmost cluster nodes, out of range of
    // none-to-few — one new link spans the whole picture.
    let max_x = pts
        .iter()
        .map(|p| p.x)
        .fold(f64::NEG_INFINITY, f64::max);
    pts.push(Point::new(max_x + 0.95, 0.0));
    (cluster, NodeSet::new(pts))
}

/// `n` positions uniform on `[0, span]`.
pub fn uniform_highway(n: usize, span: f64, seed: u64) -> HighwayInstance {
    assert!(span > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    HighwayInstance::new((0..n).map(|_| rng.gen::<f64>() * span).collect())
}

/// A highway of `k` dense clusters (uniform within `cluster_width`) whose
/// centers are `center_gap` apart.
pub fn clustered_highway(
    k: usize,
    per_cluster: usize,
    cluster_width: f64,
    center_gap: f64,
    seed: u64,
) -> HighwayInstance {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(k * per_cluster);
    for c in 0..k {
        let base = c as f64 * center_gap;
        for _ in 0..per_cluster {
            xs.push(base + rng.gen::<f64>() * cluster_width);
        }
    }
    HighwayInstance::new(xs)
}

/// A *fragmented exponential* highway: `pieces` exponential chains of
/// `chain_len` nodes each, embedded at uniform offsets within `[0, 1)` so
/// the whole instance stays within mutual range. This is the structure
/// Lemma 5.5 extracts from any high-`γ` instance, and the regime where
/// `A_apx` must switch to `A_gen`.
pub fn fragmented_exponential(pieces: usize, chain_len: usize, seed: u64) -> HighwayInstance {
    assert!(pieces >= 1 && chain_len >= 2);
    let mut rng = SmallRng::seed_from_u64(seed);
    let chain = rim_highway::exponential_chain(chain_len);
    let piece_span = chain.span();
    let mut xs = Vec::with_capacity(pieces * chain_len);
    for _ in 0..pieces {
        // Scale each copy down so pieces don't dwarf the unit span, and
        // drop it at a random offset.
        let scale = 1.0 / (pieces as f64 * 2.0);
        let offset = rng.gen::<f64>() * (1.0 - piece_span * scale).max(0.0);
        xs.extend(chain.positions().iter().map(|&x| offset + x * scale));
    }
    HighwayInstance::new(xs)
}

/// A mobility trace: a sequence of node-position snapshots under the
/// random-waypoint model (every node picks a destination uniform in the
/// `side × side` square and moves towards it at `speed` per step; on
/// arrival it picks a new destination).
///
/// Topology control under mobility re-runs on every snapshot; the
/// experiments track how interference and topology churn evolve.
pub fn random_waypoint_trace(
    n: usize,
    side: f64,
    speed: f64,
    steps: usize,
    seed: u64,
) -> Vec<NodeSet> {
    assert!(side > 0.0 && speed > 0.0);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pos: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
        .collect();
    let mut dest: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
        .collect();
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        out.push(NodeSet::new(pos.clone()));
        for i in 0..n {
            let to = dest[i] - pos[i];
            let d = to.norm();
            if d <= speed {
                pos[i] = dest[i];
                dest[i] = Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side);
            } else {
                pos[i] = pos[i] + to * (speed / d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_square(20, 2.0, 7), uniform_square(20, 2.0, 7));
        assert_eq!(
            uniform_highway(20, 3.0, 7).positions(),
            uniform_highway(20, 3.0, 7).positions()
        );
        assert_ne!(uniform_square(20, 2.0, 7), uniform_square(20, 2.0, 8));
    }

    #[test]
    fn stream_matches_materialized_generator_bit_for_bit() {
        let ns = uniform_square(333, 4.5, 42);
        let streamed: Vec<Point> = uniform_square_stream(333, 4.5, 42).collect();
        assert_eq!(ns.points(), &streamed[..]);
        let soa = uniform_soa(333, 4.5, 42);
        assert_eq!(soa.len(), 333);
        for (i, p) in ns.points().iter().enumerate() {
            assert_eq!(soa.get(i), *p, "index {i}");
        }
    }

    #[test]
    fn stream_is_exhaustible_and_sized() {
        let mut s = uniform_square_stream(3, 1.0, 9);
        assert_eq!(s.remaining(), 3);
        assert_eq!(s.size_hint(), (3, Some(3)));
        assert!(s.next().is_some());
        assert_eq!(s.by_ref().count(), 2);
        assert_eq!(s.next(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn uniform_square_respects_bounds() {
        let ns = uniform_square(200, 1.5, 3);
        assert_eq!(ns.len(), 200);
        let b = ns.bbox();
        assert!(b.min.x >= 0.0 && b.max.x <= 1.5);
        assert!(b.min.y >= 0.0 && b.max.y <= 1.5);
    }

    #[test]
    fn cluster_counts() {
        let ns = gaussian_clusters(4, 25, 5.0, 0.1, 11);
        assert_eq!(ns.len(), 100);
    }

    #[test]
    fn lattice_geometry() {
        let ns = grid_lattice(3, 4, 0.5, 0.0, 0);
        assert_eq!(ns.len(), 12);
        assert_eq!(ns.pos(0), Point::new(0.0, 0.0));
        assert_eq!(ns.pos(5), Point::new(0.5, 0.5)); // row 1, col 1
    }

    #[test]
    fn fig1_outlier_is_reachable_but_remote() {
        let (cluster, with) = fig1_instance(30, 0.1, 42);
        assert_eq!(cluster.len(), 29);
        assert_eq!(with.len(), 30);
        let outlier = with.len() - 1;
        // In range of at least one cluster node…
        let reachable = (0..outlier).any(|v| with.dist(outlier, v) <= 1.0);
        assert!(reachable);
        // …but far from the cluster centroid.
        let far = (0..outlier).all(|v| with.dist(outlier, v) > 0.8);
        assert!(far);
    }

    #[test]
    fn clustered_highway_shape() {
        let h = clustered_highway(3, 10, 0.05, 2.0, 9);
        assert_eq!(h.len(), 30);
        assert!(h.span() >= 2.0 * 2.0 && h.span() < 4.1);
    }

    #[test]
    fn waypoint_trace_moves_nodes_within_bounds() {
        let trace = random_waypoint_trace(12, 2.0, 0.1, 30, 3);
        assert_eq!(trace.len(), 30);
        for snap in &trace {
            assert_eq!(snap.len(), 12);
            let b = snap.bbox();
            assert!(b.min.x >= -1e-9 && b.max.x <= 2.0 + 1e-9);
            assert!(b.min.y >= -1e-9 && b.max.y <= 2.0 + 1e-9);
        }
        // Nodes actually move…
        assert_ne!(trace[0], trace[1]);
        // …by at most `speed` per step.
        for w in trace.windows(2) {
            for i in 0..12 {
                assert!(w[0].pos(i).dist(&w[1].pos(i)) <= 0.1 + 1e-9);
            }
        }
        // Determinism.
        assert_eq!(
            random_waypoint_trace(12, 2.0, 0.1, 30, 3)[29],
            trace[29]
        );
    }

    #[test]
    fn fragmented_exponential_fits_in_unit_span() {
        let h = fragmented_exponential(3, 8, 5);
        assert_eq!(h.len(), 24);
        assert!(h.span() <= 1.0, "span={}", h.span());
        assert!(h.linearly_connectable());
    }
}
