//! Geometry substrate for the `rim` workspace.
//!
//! The interference model of von Rickenbach et al. (IPDPS 2005) is defined
//! over points in the Euclidean plane (or on a line, the *highway model*)
//! and disks induced by transmission radii. This crate provides exactly the
//! primitives the rest of the workspace needs, built from scratch:
//!
//! * [`Point`] — a point in the plane (`f64` coordinates) with distance
//!   helpers that prefer squared distances in hot paths,
//! * [`Disk`] — a closed disk `D(c, r)` with containment predicates,
//! * [`Aabb`] — axis-aligned bounding boxes,
//! * [`UniformGrid`] — a bucket grid spatial index for range queries,
//! * [`SoaPoints`] / [`SoaGrid`] — structure-of-arrays point storage and
//!   a bucket grid with bucket-major coordinate columns, the layout the
//!   million-node streaming kernels scan,
//! * [`KdTree`] — a static 2-d tree for nearest-neighbor queries,
//! * [`SpatialIndex`] — grid/kd-tree dispatch chosen from the data,
//! * [`closest_pair`] — divide-and-conquer closest pair,
//! * [`convex_hull`] — Andrew's monotone chain.
//!
//! # Floating-point policy
//!
//! Containment in the interference model is the *closed* predicate
//! `|uv| <= r_u` where `r_u` is itself a copy of some pairwise `dist()`
//! result. All radius-containment predicates therefore compare at
//! **distance level** (`dist(p, c) <= r`, no epsilon, no re-squaring): a
//! radius copied from a distance then compares equal to that distance
//! bit-for-bit, so a node's farthest neighbor is always inside its disk.
//! (Comparing squared distances against `r*r` would break this — squaring
//! the correctly-rounded square root does not round-trip.) Squared
//! distances remain fine for *relative* comparisons such as
//! nearest-neighbor searches, where both sides are raw `dist_sq` values.

#![forbid(unsafe_code)]

// Node ids double as indices throughout this workspace; indexed loops
// over `0..n` mirror the paper's notation and often touch several arrays.
#![allow(clippy::needless_range_loop)]

pub mod bbox;
pub mod closest_pair;
pub mod delaunay;
pub mod disk;
pub mod grid;
pub mod hull;
pub mod index;
pub mod kdtree;
pub mod point;
pub mod soa;
pub mod soa_grid;

pub use bbox::Aabb;
pub use closest_pair::{closest_pair, closest_pair_brute_force};
pub use delaunay::{delaunay, Delaunay};
pub use disk::Disk;
pub use grid::{fits_u32_index, GridCapacityError, UniformGrid, MAX_INDEXED_POINTS};
pub use hull::convex_hull;
pub use index::SpatialIndex;
pub use kdtree::KdTree;
pub use point::Point;
pub use soa::SoaPoints;
pub use soa_grid::SoaGrid;
