//! Closed disks `D(c, r)` — the interference regions of the model.

use crate::point::Point;

/// A closed disk `D(c, r)`: all points at distance at most `r` from `c`.
///
/// In the interference model a node `u` with transmission radius `r_u`
/// "covers" every node inside `D(u, r_u)`; coverage is what Definition 3.1
/// of the paper counts. The containment predicate is deliberately *closed*
/// (`<=`): a node's farthest neighbor lies exactly on the boundary of its
/// disk and must be covered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disk {
    /// Disk center.
    pub center: Point,
    /// Disk radius (non-negative; a zero radius covers only the center).
    pub radius: f64,
}

impl Disk {
    /// Creates a disk. Panics in debug builds if the radius is negative
    /// or non-finite.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        Disk { center, radius }
    }

    /// Returns `true` if `p` lies inside or on the boundary of the disk.
    ///
    /// The comparison happens at distance level (`dist <= r`, not on
    /// squares): a radius copied from a [`Point::dist`] result then keeps
    /// the boundary point inside, which the interference model relies on
    /// (a node's farthest neighbor sits exactly on its disk boundary).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        self.center.dist(p) <= self.radius
    }

    /// Returns `true` if `p` lies strictly inside the disk.
    #[inline]
    pub fn contains_strict(&self, p: &Point) -> bool {
        self.center.dist(p) < self.radius
    }

    /// Returns `true` if the two (closed) disks intersect.
    #[inline]
    pub fn intersects(&self, other: &Disk) -> bool {
        let r = self.radius + other.radius;
        self.center.dist_sq(&other.center) <= r * r
    }

    /// Returns `true` if this disk entirely contains `other`.
    #[inline]
    pub fn contains_disk(&self, other: &Disk) -> bool {
        if other.radius > self.radius {
            return false;
        }
        let slack = self.radius - other.radius;
        self.center.dist_sq(&other.center) <= slack * slack
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// The disk spanned by a transmitting node: centered at `u`, with
    /// radius equal to the distance to `v` (its farthest neighbor).
    #[inline]
    pub fn spanned_by(u: Point, v: Point) -> Self {
        Disk::new(u, u.dist(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_containment_includes_boundary() {
        let d = Disk::new(Point::ORIGIN, 1.0);
        assert!(d.contains(&Point::new(1.0, 0.0)));
        assert!(!d.contains_strict(&Point::new(1.0, 0.0)));
        assert!(d.contains(&Point::new(0.0, 0.0)));
        assert!(!d.contains(&Point::new(1.0 + 1e-9, 0.0)));
    }

    #[test]
    fn spanned_by_covers_the_far_endpoint() {
        let u = Point::new(0.25, 0.5);
        let v = Point::new(0.75, 0.125);
        let d = Disk::spanned_by(u, v);
        // The farthest neighbor must be covered even though the radius went
        // through a sqrt: dist(u,v) <= dist(u,v) holds exactly.
        assert!(d.contains(&v));
    }

    #[test]
    fn zero_radius_covers_only_center() {
        let d = Disk::new(Point::new(2.0, 3.0), 0.0);
        assert!(d.contains(&Point::new(2.0, 3.0)));
        assert!(!d.contains(&Point::new(2.0, f64::from_bits(3.0f64.to_bits() + 1))));
    }

    #[test]
    fn disk_intersection() {
        let a = Disk::new(Point::ORIGIN, 1.0);
        let b = Disk::new(Point::new(2.0, 0.0), 1.0); // tangent
        let c = Disk::new(Point::new(2.0 + 1e-9, 0.0), 1.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn disk_containment_of_disks() {
        let big = Disk::new(Point::ORIGIN, 2.0);
        let small = Disk::new(Point::new(1.0, 0.0), 1.0); // internally tangent
        let out = Disk::new(Point::new(1.5, 0.0), 1.0);
        assert!(big.contains_disk(&small));
        assert!(!big.contains_disk(&out));
        assert!(!small.contains_disk(&big));
    }

    #[test]
    fn area_of_unit_disk() {
        let d = Disk::new(Point::ORIGIN, 1.0);
        assert!((d.area() - std::f64::consts::PI).abs() < 1e-12);
    }
}
