//! A static 2-d tree for nearest-neighbor and range queries.
//!
//! The [`crate::grid::UniformGrid`] is faster for uniformly dense
//! instances, but degenerate constructions such as the exponential node
//! chain have point densities varying over many orders of magnitude; a
//! kd-tree answers nearest-neighbor queries on those in `O(log n)` without
//! tuning a cell size.

use crate::point::Point;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Index into the original point slice.
    idx: u32,
    /// Split axis at this node: 0 = x, 1 = y.
    axis: u8,
}

/// A static kd-tree over a fixed set of points (indices preserved).
#[derive(Debug, Clone)]
pub struct KdTree {
    /// Implicit balanced tree in heap layout; `nodes[0]` is the root.
    nodes: Vec<Node>,
    points: Vec<Point>,
}

impl KdTree {
    /// Builds a balanced kd-tree over `points`.
    pub fn build(points: &[Point]) -> Self {
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = vec![
            Node {
                idx: u32::MAX,
                axis: 0
            };
            points.len()
        ];
        if !points.is_empty() {
            Self::build_rec(points, &mut order, 0, &mut nodes, 0);
        }
        KdTree {
            nodes,
            points: points.to_vec(),
        }
    }

    // rim-lint: allow(panic-freedom) — `order` holds indices into `points`; heap slots are pre-sized
    fn build_rec(points: &[Point], order: &mut [u32], axis: u8, nodes: &mut [Node], at: usize) {
        if order.is_empty() {
            return;
        }
        // Left-complete sizing keeps the implicit heap layout dense.
        let n = order.len();
        let mid = left_subtree_size(n);
        let key = |i: u32| -> f64 {
            let p = points[i as usize];
            if axis == 0 {
                p.x
            } else {
                p.y
            }
        };
        order.select_nth_unstable_by(mid, |&a, &b| key(a).total_cmp(&key(b)).then(a.cmp(&b)));
        nodes[at] = Node {
            idx: order[mid],
            axis,
        };
        let (left, rest) = order.split_at_mut(mid);
        let right = &mut rest[1..];
        Self::build_rec(points, left, 1 - axis, nodes, 2 * at + 1);
        Self::build_rec(points, right, 1 - axis, nodes, 2 * at + 2);
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the tree indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Index of the nearest indexed point to `q`, skipping `exclude`
    /// (pass `usize::MAX` to exclude nothing). Ties break towards the
    /// smaller index. Returns `None` if no eligible point exists.
    pub fn nearest(&self, q: Point, exclude: usize) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let mut best: Option<(f64, usize)> = None;
        self.nearest_rec(0, q, exclude, &mut best);
        best.map(|(_, i)| i)
    }

    fn nearest_rec(&self, at: usize, q: Point, exclude: usize, best: &mut Option<(f64, usize)>) {
        if at >= self.nodes.len() || self.nodes[at].idx == u32::MAX {
            return;
        }
        let node = self.nodes[at];
        let p = self.points[node.idx as usize];
        let d = p.dist_sq(&q);
        let i = node.idx as usize;
        if i != exclude {
            match *best {
                Some((bd, bi)) if (d, i) >= (bd, bi) => {}
                _ => *best = Some((d, i)),
            }
        }
        let delta = if node.axis == 0 { q.x - p.x } else { q.y - p.y };
        let (near, far) = if delta <= 0.0 {
            (2 * at + 1, 2 * at + 2)
        } else {
            (2 * at + 2, 2 * at + 1)
        };
        self.nearest_rec(near, q, exclude, best);
        // Visit the far side only if the splitting plane is closer than the
        // current best (<= keeps boundary ties deterministic).
        if best.is_none_or(|(bd, _)| delta * delta <= bd) {
            self.nearest_rec(far, q, exclude, best);
        }
    }

    /// Calls `f(i)` for every point index `i` with `|points[i] - q| <= r`
    /// (distance-level predicate — see the crate's exactness policy).
    pub fn for_each_in_disk<F: FnMut(usize)>(&self, q: Point, r: f64, mut f: F) {
        if self.points.is_empty() {
            return;
        }
        self.range_rec(0, q, r, &mut f);
    }

    // rim-lint: allow(panic-freedom) — `at` is bounds-checked before every node access
    fn range_rec<F: FnMut(usize)>(&self, at: usize, q: Point, r: f64, f: &mut F) {
        if at >= self.nodes.len() || self.nodes[at].idx == u32::MAX {
            return;
        }
        let node = self.nodes[at];
        let p = self.points[node.idx as usize];
        if p.dist(&q) <= r {
            f(node.idx as usize);
        }
        let delta = if node.axis == 0 { q.x - p.x } else { q.y - p.y };
        if delta <= r {
            self.range_rec(2 * at + 1, q, r, f);
        }
        if -delta <= r {
            self.range_rec(2 * at + 2, q, r, f);
        }
    }

    /// Collects the indices of all points within distance `r` of `q`,
    /// sorted ascending.
    pub fn query_disk(&self, q: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_disk(q, r, |i| out.push(i));
        out.sort_unstable();
        out
    }
}

/// Size of the left subtree of a left-complete binary tree with `n` nodes.
fn left_subtree_size(n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    // Height of a complete tree with n nodes.
    let h = usize::BITS - n.leading_zeros() - 1;
    let full_below = (1usize << h) - 1; // nodes in a full tree of height h-1
    let last_row = n - full_below; // nodes in the bottom row
    let half_below = full_below / 2;
    half_below + last_row.min(full_below.div_ceil(2)).min(1 << (h.saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(rnd(), rnd())).collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = pseudo_points(257, 42);
        let tree = KdTree::build(&pts);
        for q in 0..pts.len() {
            let got = tree.nearest(pts[q], q).unwrap();
            let want_d = (0..pts.len())
                .filter(|&i| i != q)
                .map(|i| pts[i].dist_sq(&pts[q]))
                .min_by(f64::total_cmp)
                .unwrap();
            assert_eq!(pts[got].dist_sq(&pts[q]), want_d, "q={q}");
        }
    }

    #[test]
    fn range_matches_brute_force() {
        let pts = pseudo_points(100, 7);
        let tree = KdTree::build(&pts);
        for &(qx, qy, r) in &[(0.5, 0.5, 0.2), (0.0, 1.0, 0.6), (0.9, 0.9, 0.05)] {
            let q = Point::new(qx, qy);
            let got = tree.query_disk(q, r);
            let want: Vec<usize> = (0..pts.len())
                .filter(|&i| pts[i].dist(&q) <= r)
                .collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn exponential_chain_densities() {
        // Nearest-neighbor must be correct when spacing varies by 2^30.
        let pts: Vec<Point> = (0..31)
            .map(|i| Point::on_line((2f64.powi(i) - 1.0) / 2f64.powi(31)))
            .collect();
        let tree = KdTree::build(&pts);
        for q in 1..pts.len() - 1 {
            // In an exponential chain the nearest neighbor of v_i is v_{i-1}.
            assert_eq!(tree.nearest(pts[q], q), Some(q - 1), "q={q}");
        }
        assert_eq!(tree.nearest(pts[0], 0), Some(1));
    }

    #[test]
    fn empty_and_duplicates() {
        let tree = KdTree::build(&[]);
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(Point::ORIGIN, usize::MAX), None);

        let pts = [Point::ORIGIN, Point::ORIGIN, Point::new(1.0, 0.0)];
        let tree = KdTree::build(&pts);
        // Duplicate points: nearest neighbor of point 0 (excluding itself)
        // is its duplicate at distance 0.
        let n = tree.nearest(pts[0], 0).unwrap();
        assert_eq!(pts[n].dist_sq(&pts[0]), 0.0);
        assert_eq!(tree.query_disk(Point::ORIGIN, 0.0), vec![0, 1]);
    }

    #[test]
    fn left_subtree_sizes_are_consistent() {
        // The split index must always be a valid median position.
        for n in 1..200 {
            let m = left_subtree_size(n);
            assert!(m < n, "n={n} m={m}");
        }
        assert_eq!(left_subtree_size(1), 0);
        assert_eq!(left_subtree_size(2), 1);
        assert_eq!(left_subtree_size(3), 1);
    }
}
