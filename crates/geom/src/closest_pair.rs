//! Closest pair of points (divide and conquer).
//!
//! Used by the topology-control baselines (the Nearest Neighbor Forest
//! starts from mutual nearest neighbors) and as a sanity check on
//! instance generators (no two distinct nodes may coincide unless a
//! construction explicitly asks for it).

use crate::point::Point;

/// Returns the indices `(i, j)` (`i < j`) of a closest pair of points and
/// their distance, or `None` if fewer than two points are given.
///
/// Ties are broken deterministically (towards lexicographically smaller
/// index pairs).
pub fn closest_pair(points: &[Point]) -> Option<(usize, usize, f64)> {
    if points.len() < 2 {
        return None;
    }
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        points[a as usize]
            .lex_cmp(&points[b as usize])
            .then(a.cmp(&b))
    });
    let mut buf = vec![0u32; order.len()];
    let mut best = (f64::INFINITY, usize::MAX, usize::MAX);
    rec(points, &mut order, &mut buf, &mut best);
    let (d_sq, i, j) = best;
    Some((i.min(j), i.max(j), d_sq.sqrt()))
}

/// `O(n²)` reference implementation, used by tests and small inputs.
pub fn closest_pair_brute_force(points: &[Point]) -> Option<(usize, usize, f64)> {
    if points.len() < 2 {
        return None;
    }
    let mut best = (f64::INFINITY, usize::MAX, usize::MAX);
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let d = points[i].dist_sq(&points[j]);
            if (d, i, j) < best {
                best = (d, i, j);
            }
        }
    }
    Some((best.1, best.2, best.0.sqrt()))
}

/// Recursive step: `order` is sorted by x on entry and by y on exit
/// (the classic merge-sort piggyback).
fn rec(points: &[Point], order: &mut [u32], buf: &mut [u32], best: &mut (f64, usize, usize)) {
    let n = order.len();
    if n <= 3 {
        for a in 0..n {
            for b in (a + 1)..n {
                consider(points, order[a] as usize, order[b] as usize, best);
            }
        }
        order.sort_unstable_by(|&a, &b| {
            points[a as usize]
                .y
                .total_cmp(&points[b as usize].y)
                .then(a.cmp(&b))
        });
        return;
    }
    let mid = n / 2;
    let split_x = points[order[mid] as usize].x;
    {
        let (left, right) = order.split_at_mut(mid);
        let (bl, br) = buf.split_at_mut(mid);
        rec(points, left, bl, best);
        rec(points, right, br, best);
    }
    // Merge the two halves by y.
    {
        let (left, right) = order.split_at(mid);
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < left.len() && j < right.len() {
            let li = left[i] as usize;
            let rj = right[j] as usize;
            if points[li]
                .y
                .total_cmp(&points[rj].y)
                .then(left[i].cmp(&right[j]))
                .is_le()
            {
                buf[k] = left[i];
                i += 1;
            } else {
                buf[k] = right[j];
                j += 1;
            }
            k += 1;
        }
        buf[k..k + left.len() - i].copy_from_slice(&left[i..]);
        let k2 = k + left.len() - i;
        buf[k2..k2 + right.len() - j].copy_from_slice(&right[j..]);
    }
    order.copy_from_slice(&buf[..n]);
    // Strip: points within the current best distance of the split line,
    // scanned in y-order; each needs to look at most ~7 successors.
    let d = best.0.sqrt();
    let mut strip_len = 0;
    for &i in order.iter() {
        if (points[i as usize].x - split_x).abs() <= d {
            buf[strip_len] = i;
            strip_len += 1;
        }
    }
    for a in 0..strip_len {
        let pa = points[buf[a] as usize];
        for b in (a + 1)..strip_len {
            let pb = points[buf[b] as usize];
            if pb.y - pa.y > d {
                break;
            }
            consider(points, buf[a] as usize, buf[b] as usize, best);
        }
    }
}

#[inline]
fn consider(points: &[Point], i: usize, j: usize, best: &mut (f64, usize, usize)) {
    let d = points[i].dist_sq(&points[j]);
    let (lo, hi) = (i.min(j), i.max(j));
    if (d, lo, hi) < *best {
        *best = (d, lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(rnd(), rnd())).collect()
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..20u64 {
            let pts = pseudo_points(120, seed + 1);
            let fast = closest_pair(&pts).unwrap();
            let brute = closest_pair_brute_force(&pts).unwrap();
            assert_eq!(fast.2, brute.2, "seed={seed}");
        }
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(closest_pair(&[]), None);
        assert_eq!(closest_pair(&[Point::ORIGIN]), None);
        let two = [Point::ORIGIN, Point::new(3.0, 4.0)];
        assert_eq!(closest_pair(&two), Some((0, 1, 5.0)));
    }

    #[test]
    fn duplicate_points_have_distance_zero() {
        let pts = [Point::new(0.5, 0.5), Point::new(1.0, 0.0), Point::new(0.5, 0.5)];
        let (i, j, d) = closest_pair(&pts).unwrap();
        assert_eq!((i, j), (0, 2));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn collinear_highway_input() {
        let pts: Vec<Point> = [0.0, 0.9, 1.0, 2.5, 2.55].iter().map(|&x| Point::on_line(x)).collect();
        let (i, j, d) = closest_pair(&pts).unwrap();
        assert_eq!((i, j), (3, 4));
        assert!((d - 0.05).abs() < 1e-12);
    }

    #[test]
    fn exponential_chain_closest_is_leftmost_gap() {
        let pts: Vec<Point> = (0..20)
            .map(|i| Point::on_line((2f64.powi(i) - 1.0) / 2f64.powi(20)))
            .collect();
        let (i, j, _) = closest_pair(&pts).unwrap();
        assert_eq!((i, j), (0, 1));
    }
}
