//! Axis-aligned bounding boxes.

use crate::point::Point;

/// An axis-aligned bounding box (closed on all sides).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Corner with minimal coordinates.
    pub min: Point,
    /// Corner with maximal coordinates.
    pub max: Point,
}

impl Aabb {
    /// An "empty" box that contains nothing and is the identity for
    /// [`Aabb::expand`].
    pub const EMPTY: Aabb = Aabb {
        min: Point {
            x: f64::INFINITY,
            y: f64::INFINITY,
        },
        max: Point {
            x: f64::NEG_INFINITY,
            y: f64::NEG_INFINITY,
        },
    };

    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Smallest box containing all `points`; [`Aabb::EMPTY`] if none.
    pub fn of_points(points: &[Point]) -> Self {
        points.iter().fold(Aabb::EMPTY, |b, p| b.expand(*p))
    }

    /// Returns the box grown to also contain `p`.
    #[must_use]
    pub fn expand(&self, p: Point) -> Self {
        Aabb {
            min: Point::new(self.min.x.min(p.x), self.min.y.min(p.y)),
            max: Point::new(self.max.x.max(p.x), self.max.y.max(p.y)),
        }
    }

    /// Returns `true` if the box contains `p` (boundary inclusive).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` if the box is empty (contains no point).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width of the box (0 for empty boxes).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height of the box (0 for empty boxes).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Squared distance from `p` to the box (0 if inside).
    #[inline]
    pub fn dist_sq_to(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_points_bounds_everything() {
        let pts = [
            Point::new(1.0, 2.0),
            Point::new(-3.0, 0.5),
            Point::new(0.0, 7.0),
        ];
        let b = Aabb::of_points(&pts);
        for p in &pts {
            assert!(b.contains(p));
        }
        assert_eq!(b.min, Point::new(-3.0, 0.5));
        assert_eq!(b.max, Point::new(1.0, 7.0));
    }

    #[test]
    fn empty_box_behaviour() {
        let e = Aabb::EMPTY;
        assert!(e.is_empty());
        assert!(!e.contains(&Point::ORIGIN));
        assert_eq!(e.width(), 0.0);
        assert_eq!(e.height(), 0.0);
        let b = e.expand(Point::new(1.0, 1.0));
        assert!(!b.is_empty());
        assert!(b.contains(&Point::new(1.0, 1.0)));
    }

    #[test]
    fn dist_sq_inside_is_zero() {
        let b = Aabb::new(Point::ORIGIN, Point::new(2.0, 2.0));
        assert_eq!(b.dist_sq_to(&Point::new(1.0, 1.0)), 0.0);
        assert_eq!(b.dist_sq_to(&Point::new(3.0, 1.0)), 1.0);
        assert_eq!(b.dist_sq_to(&Point::new(3.0, 3.0)), 2.0);
        assert_eq!(b.dist_sq_to(&Point::new(-1.0, -1.0)), 2.0);
    }

    #[test]
    fn new_normalizes_corner_order() {
        let b = Aabb::new(Point::new(2.0, -1.0), Point::new(-2.0, 1.0));
        assert_eq!(b.min, Point::new(-2.0, -1.0));
        assert_eq!(b.max, Point::new(2.0, 1.0));
        assert_eq!(b.width(), 4.0);
        assert_eq!(b.height(), 2.0);
    }
}
