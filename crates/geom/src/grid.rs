//! Uniform bucket grid — the workhorse spatial index.
//!
//! Interference queries repeatedly ask "which points lie within distance
//! `r` of `p`?". For the point densities of ad-hoc network instances a
//! uniform grid with cell size matched to the typical query radius answers
//! this in output-sensitive time and with far better constants than a tree.

use crate::bbox::Aabb;
use crate::point::Point;

/// Largest number of points a grid-backed index can hold: bucket items
/// are stored as `u32` ids, so any build beyond this would silently
/// truncate indices. [`UniformGrid::try_build`] (and the SoA variant)
/// refuse larger inputs instead.
pub const MAX_INDEXED_POINTS: usize = u32::MAX as usize;

/// Returns `true` if `n` points fit a `u32`-id bucket index — the
/// capacity predicate behind [`UniformGrid::try_build`]. Exposed so the
/// boundary (`u32::MAX` fits, `u32::MAX + 1` does not) is unit-testable
/// without allocating four billion points.
#[inline]
pub fn fits_u32_index(n: usize) -> bool {
    n <= MAX_INDEXED_POINTS
}

/// Error returned when a grid build would overflow its `u32` item ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCapacityError {
    /// Number of points the caller asked to index.
    pub points: usize,
}

impl std::fmt::Display for GridCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot index {} points: grid item ids are u32 (max {})",
            self.points, MAX_INDEXED_POINTS
        )
    }
}

impl std::error::Error for GridCapacityError {}

/// Bucket scatter shared by [`UniformGrid`] and the SoA grid: given each
/// point's cell id, produces the CSR `starts` array (length `ncells + 1`)
/// and the bucket-major point permutation (`order[k]` = original point
/// id), insertion-stable within every bucket.
///
/// Small tables scatter directly. Past [`DIRECT_SCATTER_CELLS`] the
/// cursor and destination arrays no longer fit the fast caches and the
/// classic one-pass counting sort degrades to one cache miss per point;
/// the scatter then switches to a two-pass *row-blocked* fill: points
/// are first partitioned by coarse cell block (at most
/// [`COARSE_BLOCKS`] blocks, each covering a contiguous cell-id range),
/// then each block is scattered exactly — every pass works on a cursor
/// window small enough to stay cache-resident. Both paths produce
/// bit-identical output (a stable sort by cell id).
// rim-lint: allow(panic-freedom) — cell ids are < ncells by construction; prefix sums cover ncells + 1 slots
pub(crate) fn bucket_scatter(cells: &[u32], ncells: usize) -> (Vec<u32>, Vec<u32>) {
    let n = cells.len();
    let mut counts = vec![0u32; ncells + 1];
    for &c in cells {
        counts[c as usize + 1] += 1;
    }
    for i in 1..=ncells {
        counts[i] += counts[i - 1];
    }
    let starts = counts.clone();
    let mut order = vec![0u32; n];
    if ncells <= DIRECT_SCATTER_CELLS {
        let mut cursor = counts;
        for (i, &c) in cells.iter().enumerate() {
            order[cursor[c as usize] as usize] = i as u32;
            cursor[c as usize] += 1;
        }
        return (starts, order);
    }
    // Pass 1: stable partition by coarse block (cell id >> shift).
    let mut shift = 0u32;
    while (ncells - 1) >> shift >= COARSE_BLOCKS {
        shift += 1;
    }
    let nblocks = ((ncells - 1) >> shift) + 1;
    let mut block_counts = vec![0u32; nblocks + 1];
    for &c in cells {
        block_counts[(c >> shift) as usize + 1] += 1;
    }
    for i in 1..=nblocks {
        block_counts[i] += block_counts[i - 1];
    }
    let mut block_cursor = block_counts;
    let mut by_block = vec![0u32; n];
    for (i, &c) in cells.iter().enumerate() {
        let b = (c >> shift) as usize;
        by_block[block_cursor[b] as usize] = i as u32;
        block_cursor[b] += 1;
    }
    // Pass 2: exact scatter, one contiguous cursor/destination window
    // per block. Stability of pass 1 keeps insertion order per bucket.
    let mut cursor = starts.clone();
    for &i in &by_block {
        let c = cells[i as usize] as usize;
        order[cursor[c] as usize] = i;
        cursor[c] += 1;
    }
    (starts, order)
}

/// Cell-table size up to which the one-pass scatter stays cache-friendly.
const DIRECT_SCATTER_CELLS: usize = 1 << 15;
/// Maximum number of coarse blocks in the row-blocked scatter.
const COARSE_BLOCKS: usize = 1 << 12;

/// A uniform bucket grid over a fixed set of points.
///
/// The grid stores point *indices* into the slice it was built from, so it
/// composes with any external node numbering. Buckets are stored in a flat
/// CSR-like layout (`starts` + `items`) to keep the index allocation-free
/// at query time.
///
/// ```
/// use rim_geom::{Point, UniformGrid};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(2.0, 2.0)];
/// let grid = UniformGrid::build(&pts, 0.5);
/// assert_eq!(grid.query_disk(Point::new(0.1, 0.0), 0.5), vec![0, 1]);
/// assert_eq!(grid.nearest(Point::new(1.8, 1.8), usize::MAX), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    starts: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Point>,
}

impl UniformGrid {
    /// Builds a grid over `points` with the given `cell` size.
    ///
    /// A good choice for `cell` is the dominant query radius; queries with
    /// radius `r` touch `O((r/cell + 2)^2)` buckets. The requested cell
    /// size is a *hint* in two ways:
    ///
    /// * A non-positive or non-finite `cell` (zero spread instances —
    ///   all-coincident points, a single node — produce exactly these when
    ///   callers derive the cell from pairwise distances) is replaced by
    ///   the bounding-box diagonal, or `1.0` when that is also zero. The
    ///   grid then degenerates to a handful of buckets, which is the right
    ///   shape for such inputs anyway.
    /// * If the hint would create more than `O(n)` buckets over the
    ///   points' bounding box (think a nanometer cell over a kilometer
    ///   span — exponential node chains do this), the cell is enlarged to
    ///   keep memory linear in `n`.
    ///
    /// Queries stay correct under both adjustments, only their constant
    /// factor changes.
    ///
    /// Panics if `points` exceeds [`MAX_INDEXED_POINTS`] (the `u32` item
    /// capacity); use [`UniformGrid::try_build`] to handle that case as
    /// an error instead.
    // rim-lint: allow(panic-freedom) — the capacity assert replaces silent `as u32` id truncation; instances this large cannot be addressed by any caller in the workspace
    pub fn build(points: &[Point], cell: f64) -> Self {
        match Self::try_build(points, cell) {
            Ok(grid) => grid,
            // rim-lint: allow(no-unwrap-in-lib) — intentional capacity assert, fallible twin is try_build
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`UniformGrid::build`]: returns a
    /// [`GridCapacityError`] instead of panicking when `points` has more
    /// entries than the `u32` bucket items can address.
    pub fn try_build(points: &[Point], cell: f64) -> Result<Self, GridCapacityError> {
        if !fits_u32_index(points.len()) {
            return Err(GridCapacityError {
                points: points.len(),
            });
        }
        let bbox = Aabb::of_points(points);
        let cell = if cell > 0.0 && cell.is_finite() {
            cell
        } else {
            let diag = if bbox.is_empty() {
                0.0
            } else {
                Point::new(bbox.width(), bbox.height()).norm()
            };
            if diag > 0.0 && diag.is_finite() {
                diag
            } else {
                1.0
            }
        };
        let (origin, nx, ny, cell) = if bbox.is_empty() {
            (Point::ORIGIN, 1, 1, cell)
        } else {
            // Capped below u32::MAX cells so cell ids fit u32 even for
            // point counts near the item-id capacity.
            let budget = ((8 * points.len() + 1024) as f64).min(4.0e9);
            let mut cell = cell;
            let cells_for = |c: f64| {
                ((bbox.width() / c).floor() + 1.0) * ((bbox.height() / c).floor() + 1.0)
            };
            if cells_for(cell) > budget {
                cell *= (cells_for(cell) / budget).sqrt().max(2.0);
                while cells_for(cell) > budget {
                    cell *= 2.0;
                }
            }
            let nx = (bbox.width() / cell).floor() as usize + 1;
            let ny = (bbox.height() / cell).floor() as usize + 1;
            (bbox.min, nx, ny, cell)
        };

        let ncells = nx * ny;
        // Cell ids are computed once into a column (the second pass of
        // the old build recomputed them point by point), then scattered
        // with the shared cache-blocked bucket fill.
        let cell_of = |p: &Point| -> u32 {
            let cx = (((p.x - origin.x) / cell).floor() as usize).min(nx - 1);
            let cy = (((p.y - origin.y) / cell).floor() as usize).min(ny - 1);
            (cy * nx + cx) as u32
        };
        let cells: Vec<u32> = points.iter().map(cell_of).collect();
        let (starts, items) = bucket_scatter(&cells, ncells);

        Ok(UniformGrid {
            origin,
            cell,
            nx,
            ny,
            starts,
            items,
            points: points.to_vec(),
        })
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the grid indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with index `i` (as passed at build time).
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Calls `f(i)` for every point index `i` with `|points[i] - c| <= r`.
    ///
    /// The center `c` need not be an indexed point. Visit order is
    /// deterministic (bucket-major, insertion order within buckets).
    /// Membership uses the distance-level predicate `|p - c| <= r` (not
    /// squared), so a radius copied from a [`Point::dist`] result keeps
    /// the boundary point inside — the exactness policy of this crate.
    pub fn for_each_in_disk<F: FnMut(usize)>(&self, c: Point, r: f64, f: F) {
        self.for_each_in_disk_counting(c, r, f);
    }

    /// Like [`Self::for_each_in_disk`], additionally returning the number
    /// of candidate points scanned (bucket occupants tested against the
    /// distance predicate, whether or not they passed) — the
    /// output-sensitivity signal the observability layer reports per
    /// query.
    // rim-lint: allow(panic-freedom) — cell coordinates are clamped to the grid; `starts` has `ncells + 1` entries
    pub fn for_each_in_disk_counting<F: FnMut(usize)>(&self, c: Point, r: f64, mut f: F) -> usize {
        debug_assert!(r >= 0.0);
        let mut candidates = 0usize;
        // One extra cell of margin on every side: `c.x + r` rounds to
        // nearest and can land *below* the coordinate of a point at
        // distance exactly `r` (e.g. 0.2 + 0.7 rounds down), which would
        // silently drop a closed-disk boundary point from the scan. The
        // rounding error is a few ulps — far below one cell — so a
        // single-cell margin restores the superset guarantee; the exact
        // distance predicate below still decides membership.
        let x0 = ((c.x - r - self.origin.x) / self.cell).floor() - 1.0;
        let x1 = ((c.x + r - self.origin.x) / self.cell).floor() + 1.0;
        let y0 = ((c.y - r - self.origin.y) / self.cell).floor() - 1.0;
        let y1 = ((c.y + r - self.origin.y) / self.cell).floor() + 1.0;
        let cx0 = x0.max(0.0) as usize;
        let cx1 = (x1.max(-1.0) as isize).min(self.nx as isize - 1);
        let cy0 = y0.max(0.0) as usize;
        let cy1 = (y1.max(-1.0) as isize).min(self.ny as isize - 1);
        if cx1 < cx0 as isize || cy1 < cy0 as isize {
            return candidates;
        }
        for cy in cy0..=(cy1 as usize) {
            for cx in cx0..=(cx1 as usize) {
                let cidx = cy * self.nx + cx;
                let lo = self.starts[cidx] as usize;
                let hi = self.starts[cidx + 1] as usize;
                candidates += hi - lo;
                for &i in &self.items[lo..hi] {
                    if self.points[i as usize].dist(&c) <= r {
                        f(i as usize);
                    }
                }
            }
        }
        candidates
    }

    /// Occupancy of every non-empty bucket, in cell order — the cell
    /// occupancy distribution the observability layer histograms at build
    /// time.
    pub fn nonempty_bucket_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .filter(|&occ| occ > 0)
    }

    /// Collects the indices of all points within distance `r` of `c`.
    pub fn query_disk(&self, c: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_disk(c, r, |i| out.push(i));
        out
    }

    /// Counts the points within distance `r` of `c`.
    pub fn count_in_disk(&self, c: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_in_disk(c, r, |_| n += 1);
        n
    }

    /// Index of the nearest indexed point to `c` that is not `exclude`
    /// (pass `usize::MAX` to exclude nothing). Returns `None` when no
    /// eligible point exists. Ties break towards the smaller index.
    pub fn nearest(&self, c: Point, exclude: usize) -> Option<usize> {
        if self.points.is_empty() || (self.points.len() == 1 && exclude == 0) {
            return None;
        }
        // Expanding ring search: try radii cell, 2*cell, 4*cell, ... until a
        // hit is found, then verify with one final query at the found
        // distance (a closer point could sit in a diagonal bucket).
        let mut r = self.cell;
        loop {
            let mut best: Option<(f64, usize)> = None;
            self.for_each_in_disk(c, r, |i| {
                if i == exclude {
                    return;
                }
                let d = self.points[i].dist_sq(&c);
                match best {
                    Some((bd, bi)) if (d, i) >= (bd, bi) => {}
                    _ => best = Some((d, i)),
                }
            });
            if let Some((d_sq, i)) = best {
                let d = d_sq.sqrt();
                if d <= r {
                    // Confirm: search the exact radius d to catch diagonal
                    // neighbors that the square-of-buckets already covers.
                    let mut confirm = (d_sq, i);
                    self.for_each_in_disk(c, d, |j| {
                        if j == exclude {
                            return;
                        }
                        let dj = self.points[j].dist_sq(&c);
                        if (dj, j) < confirm {
                            confirm = (dj, j);
                        }
                    });
                    return Some(confirm.1);
                }
            }
            r *= 2.0;
            // Bail out once the ring covers the whole point set.
            if r > 4.0 * self.span() + 4.0 * self.cell {
                let mut best: Option<(f64, usize)> = None;
                for (i, p) in self.points.iter().enumerate() {
                    if i == exclude {
                        continue;
                    }
                    let d = p.dist_sq(&c);
                    if best.is_none_or(|(bd, bi)| (d, i) < (bd, bi)) {
                        best = Some((d, i));
                    }
                }
                return best.map(|(_, i)| i);
            }
        }
    }

    fn span(&self) -> f64 {
        let w = self.nx as f64 * self.cell;
        let h = self.ny as f64 * self.cell;
        (w * w + h * h).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_disk(points: &[Point], c: Point, r: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| points[i].dist(&c) <= r)
            .collect()
    }

    #[test]
    fn query_matches_brute_force_on_lattice() {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 0.1, j as f64 * 0.1));
            }
        }
        let grid = UniformGrid::build(&pts, 0.25);
        for &(cx, cy, r) in &[(0.5, 0.5, 0.3), (0.0, 0.0, 0.15), (0.95, 0.1, 0.5)] {
            let c = Point::new(cx, cy);
            let mut got = grid.query_disk(c, r);
            got.sort_unstable();
            assert_eq!(got, brute_disk(&pts, c, r));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let grid = UniformGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.query_disk(Point::ORIGIN, 10.0), Vec::<usize>::new());
        assert_eq!(grid.nearest(Point::ORIGIN, usize::MAX), None);

        let grid = UniformGrid::build(&[Point::new(3.0, 4.0)], 1.0);
        assert_eq!(grid.query_disk(Point::ORIGIN, 5.0), vec![0]);
        assert_eq!(grid.query_disk(Point::ORIGIN, 4.9), Vec::<usize>::new());
        assert_eq!(grid.nearest(Point::ORIGIN, usize::MAX), Some(0));
        assert_eq!(grid.nearest(Point::ORIGIN, 0), None);
    }

    #[test]
    fn nearest_matches_brute_force() {
        // Deterministic pseudo-random points via a simple LCG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..200).map(|_| Point::new(rnd(), rnd())).collect();
        let grid = UniformGrid::build(&pts, 0.05);
        for q in 0..pts.len() {
            let got = grid.nearest(pts[q], q).unwrap();
            let want = (0..pts.len())
                .filter(|&i| i != q)
                .min_by(|&a, &b| {
                    pts[a]
                        .dist_sq(&pts[q])
                        .total_cmp(&pts[b].dist_sq(&pts[q]))
                        .then(a.cmp(&b))
                })
                .unwrap();
            assert_eq!(
                pts[got].dist_sq(&pts[q]),
                pts[want].dist_sq(&pts[q]),
                "q={q} got={got} want={want}"
            );
        }
    }

    #[test]
    fn boundary_points_are_included() {
        // A point exactly at distance r must be reported (closed disk).
        let pts = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let grid = UniformGrid::build(&pts, 0.3);
        assert_eq!(grid.query_disk(Point::ORIGIN, 1.0), vec![0, 1]);
    }

    #[test]
    fn pathological_cell_sizes_stay_bounded() {
        // A nanometer cell over a unit span must not allocate a huge
        // bucket table (regression: exponential-chain radii as cells).
        let pts: Vec<Point> = (0..32)
            .map(|i| Point::on_line((2f64.powi(i) - 1.0) / 2f64.powi(32)))
            .collect();
        let grid = UniformGrid::build(&pts, 2f64.powi(-32));
        let mut got = grid.query_disk(Point::on_line(0.0), 0.5);
        got.sort_unstable();
        assert_eq!(got, brute_disk(&pts, Point::on_line(0.0), 0.5));
        assert_eq!(grid.nearest(pts[5], 5), Some(4));
    }

    #[test]
    fn degenerate_cell_sizes_are_sanitized() {
        // Cell hints of 0, negative, NaN and infinity arise naturally when
        // callers derive the cell from pairwise distances on degenerate
        // inputs (all-coincident points, a single node). All must build a
        // working grid rather than panic.
        let pts = [Point::new(1.0, 2.0), Point::new(4.0, 6.0)];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let grid = UniformGrid::build(&pts, bad);
            let mut got = grid.query_disk(Point::new(1.0, 2.0), 5.0);
            got.sort_unstable();
            assert_eq!(got, vec![0, 1], "cell={bad}");
            assert_eq!(grid.nearest(Point::new(4.0, 6.0), 1), Some(0));
        }
    }

    #[test]
    fn all_coincident_points() {
        // Zero spread: the bounding box is a single point, so any cell hint
        // (including a degenerate one) must collapse to one bucket.
        let pts = vec![Point::new(2.5, -1.5); 9];
        for cell in [0.0, 1.0, f64::NAN] {
            let grid = UniformGrid::build(&pts, cell);
            assert_eq!(grid.len(), 9);
            assert_eq!(
                grid.query_disk(Point::new(2.5, -1.5), 0.0),
                (0..9).collect::<Vec<_>>(),
                "cell={cell}"
            );
            assert_eq!(grid.count_in_disk(Point::new(2.5, -1.5), 0.0), 9);
            assert!(grid.query_disk(Point::ORIGIN, 1.0).is_empty());
        }
    }

    #[test]
    fn single_node() {
        let pts = [Point::new(7.0, 7.0)];
        for cell in [0.0, 0.5, f64::INFINITY] {
            let grid = UniformGrid::build(&pts, cell);
            assert_eq!(grid.query_disk(Point::new(7.0, 7.0), 0.0), vec![0]);
            assert_eq!(grid.nearest(Point::new(7.0, 7.0), 0), None);
        }
    }

    #[test]
    fn boundary_point_survives_downward_rounding_of_cell_range() {
        // Regression: with c.x = 0.2 and r = dist(0.2, 0.9) the sum
        // `c.x + r` rounds *below* 0.9, and the unmargined cell range
        // excluded the bucket holding the boundary point even though the
        // closed-disk predicate includes it.
        let pts = [
            Point::on_line(0.0),
            Point::on_line(0.2),
            Point::on_line(0.5),
            Point::on_line(0.9),
        ];
        let r = pts[1].dist(&pts[3]);
        let grid = UniformGrid::build(&pts, 0.45);
        assert_eq!(grid.query_disk(pts[1], r), vec![0, 1, 2, 3]);
    }

    #[test]
    fn closed_disk_boundary_semantics() {
        // `for_each_in_disk` must use the *closed* distance-level predicate
        // `dist(p, c) <= r`: a radius copied from a `Point::dist` result
        // keeps the boundary point inside, bit for bit. This is the exact
        // comparison `interference_at` uses, so the two must agree.
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.7, 0.9);
        let r = a.dist(&b); // irrational; only bit-identical compare passes
        let pts = [a, b];
        let grid = UniformGrid::build(&pts, r / 3.0);
        assert_eq!(grid.query_disk(a, r), vec![0, 1]);
        // The open side: anything strictly below the distance excludes b.
        let below = f64::from_bits(r.to_bits() - 1);
        assert_eq!(grid.query_disk(a, below), vec![0]);
    }

    #[test]
    fn collinear_highway_points() {
        let pts: Vec<Point> = (0..50).map(|i| Point::on_line(i as f64 * 0.02)).collect();
        let grid = UniformGrid::build(&pts, 0.1);
        let mut got = grid.query_disk(Point::on_line(0.5), 0.1);
        got.sort_unstable();
        assert_eq!(got, brute_disk(&pts, Point::on_line(0.5), 0.1));
    }

    #[test]
    fn u32_capacity_boundary_is_pinned() {
        // The boundary itself cannot be allocated in a test, so the
        // predicate behind `try_build` pins it: exactly u32::MAX points
        // fit, one more does not (the old build truncated ids silently).
        assert!(fits_u32_index(0));
        assert!(fits_u32_index(MAX_INDEXED_POINTS));
        assert!(!fits_u32_index(MAX_INDEXED_POINTS + 1));
        let err = GridCapacityError {
            points: MAX_INDEXED_POINTS + 1,
        };
        assert!(err.to_string().contains("4294967295"), "{err}");
        // In-capacity builds succeed through the fallible path.
        let grid = UniformGrid::try_build(&[Point::ORIGIN], 1.0).unwrap();
        assert_eq!(grid.len(), 1);
    }

    #[test]
    fn blocked_scatter_matches_direct_scatter() {
        // Synthetic cell ids over a table large enough to force the
        // row-blocked two-pass path; the result must equal a reference
        // stable sort (which is also what the direct path computes).
        let ncells = DIRECT_SCATTER_CELLS * 4;
        let mut state = 1u64;
        let cells: Vec<u32> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as u32 % ncells as u32
            })
            .collect();
        let (starts, order) = bucket_scatter(&cells, ncells);
        let mut expect: Vec<u32> = (0..cells.len() as u32).collect();
        expect.sort_by_key(|&i| cells[i as usize]); // stable
        assert_eq!(order, expect);
        assert_eq!(starts.len(), ncells + 1);
        assert_eq!(*starts.last().unwrap() as usize, cells.len());
        for w in starts.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn candidate_count_bounds_the_hits() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1))
            .collect();
        let grid = UniformGrid::build(&pts, 0.2);
        let mut hits = 0usize;
        let candidates = grid.for_each_in_disk_counting(Point::new(0.5, 0.5), 0.25, |_| hits += 1);
        assert!(hits > 0);
        assert!(candidates >= hits, "candidates={candidates} hits={hits}");
        assert!(candidates <= pts.len());
        // Bucket occupancies partition the point set.
        assert_eq!(grid.nonempty_bucket_sizes().sum::<usize>(), pts.len());
        assert!(grid.nonempty_bucket_sizes().all(|occ| occ > 0));
    }
}
