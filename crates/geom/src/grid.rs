//! Uniform bucket grid — the workhorse spatial index.
//!
//! Interference queries repeatedly ask "which points lie within distance
//! `r` of `p`?". For the point densities of ad-hoc network instances a
//! uniform grid with cell size matched to the typical query radius answers
//! this in output-sensitive time and with far better constants than a tree.

use crate::bbox::Aabb;
use crate::point::Point;

/// A uniform bucket grid over a fixed set of points.
///
/// The grid stores point *indices* into the slice it was built from, so it
/// composes with any external node numbering. Buckets are stored in a flat
/// CSR-like layout (`starts` + `items`) to keep the index allocation-free
/// at query time.
///
/// ```
/// use rim_geom::{Point, UniformGrid};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0), Point::new(2.0, 2.0)];
/// let grid = UniformGrid::build(&pts, 0.5);
/// assert_eq!(grid.query_disk(Point::new(0.1, 0.0), 0.5), vec![0, 1]);
/// assert_eq!(grid.nearest(Point::new(1.8, 1.8), usize::MAX), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct UniformGrid {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    starts: Vec<u32>,
    items: Vec<u32>,
    points: Vec<Point>,
}

impl UniformGrid {
    /// Builds a grid over `points` with the given `cell` size.
    ///
    /// A good choice for `cell` is the dominant query radius; queries with
    /// radius `r` touch `O((r/cell + 2)^2)` buckets. The requested cell
    /// size is a *hint* in two ways:
    ///
    /// * A non-positive or non-finite `cell` (zero spread instances —
    ///   all-coincident points, a single node — produce exactly these when
    ///   callers derive the cell from pairwise distances) is replaced by
    ///   the bounding-box diagonal, or `1.0` when that is also zero. The
    ///   grid then degenerates to a handful of buckets, which is the right
    ///   shape for such inputs anyway.
    /// * If the hint would create more than `O(n)` buckets over the
    ///   points' bounding box (think a nanometer cell over a kilometer
    ///   span — exponential node chains do this), the cell is enlarged to
    ///   keep memory linear in `n`.
    ///
    /// Queries stay correct under both adjustments, only their constant
    /// factor changes.
    // rim-lint: allow(panic-freedom) — `cell_of` clamps into `0..ncells`; the prefix sums cover `ncells + 1` slots
    pub fn build(points: &[Point], cell: f64) -> Self {
        let bbox = Aabb::of_points(points);
        let cell = if cell > 0.0 && cell.is_finite() {
            cell
        } else {
            let diag = if bbox.is_empty() {
                0.0
            } else {
                Point::new(bbox.width(), bbox.height()).norm()
            };
            if diag > 0.0 && diag.is_finite() {
                diag
            } else {
                1.0
            }
        };
        let (origin, nx, ny, cell) = if bbox.is_empty() {
            (Point::ORIGIN, 1, 1, cell)
        } else {
            let budget = (8 * points.len() + 1024) as f64;
            let mut cell = cell;
            let cells_for = |c: f64| {
                ((bbox.width() / c).floor() + 1.0) * ((bbox.height() / c).floor() + 1.0)
            };
            if cells_for(cell) > budget {
                cell *= (cells_for(cell) / budget).sqrt().max(2.0);
                while cells_for(cell) > budget {
                    cell *= 2.0;
                }
            }
            let nx = (bbox.width() / cell).floor() as usize + 1;
            let ny = (bbox.height() / cell).floor() as usize + 1;
            (bbox.min, nx, ny, cell)
        };

        let ncells = nx * ny;
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - origin.x) / cell).floor() as usize).min(nx - 1);
            let cy = (((p.y - origin.y) / cell).floor() as usize).min(ny - 1);
            cy * nx + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 1..=ncells {
            counts[i] += counts[i - 1];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut items = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            items[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        UniformGrid {
            origin,
            cell,
            nx,
            ny,
            starts,
            items,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the grid indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point with index `i` (as passed at build time).
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    /// Calls `f(i)` for every point index `i` with `|points[i] - c| <= r`.
    ///
    /// The center `c` need not be an indexed point. Visit order is
    /// deterministic (bucket-major, insertion order within buckets).
    /// Membership uses the distance-level predicate `|p - c| <= r` (not
    /// squared), so a radius copied from a [`Point::dist`] result keeps
    /// the boundary point inside — the exactness policy of this crate.
    pub fn for_each_in_disk<F: FnMut(usize)>(&self, c: Point, r: f64, f: F) {
        self.for_each_in_disk_counting(c, r, f);
    }

    /// Like [`Self::for_each_in_disk`], additionally returning the number
    /// of candidate points scanned (bucket occupants tested against the
    /// distance predicate, whether or not they passed) — the
    /// output-sensitivity signal the observability layer reports per
    /// query.
    // rim-lint: allow(panic-freedom) — cell coordinates are clamped to the grid; `starts` has `ncells + 1` entries
    pub fn for_each_in_disk_counting<F: FnMut(usize)>(&self, c: Point, r: f64, mut f: F) -> usize {
        debug_assert!(r >= 0.0);
        let mut candidates = 0usize;
        // One extra cell of margin on every side: `c.x + r` rounds to
        // nearest and can land *below* the coordinate of a point at
        // distance exactly `r` (e.g. 0.2 + 0.7 rounds down), which would
        // silently drop a closed-disk boundary point from the scan. The
        // rounding error is a few ulps — far below one cell — so a
        // single-cell margin restores the superset guarantee; the exact
        // distance predicate below still decides membership.
        let x0 = ((c.x - r - self.origin.x) / self.cell).floor() - 1.0;
        let x1 = ((c.x + r - self.origin.x) / self.cell).floor() + 1.0;
        let y0 = ((c.y - r - self.origin.y) / self.cell).floor() - 1.0;
        let y1 = ((c.y + r - self.origin.y) / self.cell).floor() + 1.0;
        let cx0 = x0.max(0.0) as usize;
        let cx1 = (x1.max(-1.0) as isize).min(self.nx as isize - 1);
        let cy0 = y0.max(0.0) as usize;
        let cy1 = (y1.max(-1.0) as isize).min(self.ny as isize - 1);
        if cx1 < cx0 as isize || cy1 < cy0 as isize {
            return candidates;
        }
        for cy in cy0..=(cy1 as usize) {
            for cx in cx0..=(cx1 as usize) {
                let cidx = cy * self.nx + cx;
                let lo = self.starts[cidx] as usize;
                let hi = self.starts[cidx + 1] as usize;
                candidates += hi - lo;
                for &i in &self.items[lo..hi] {
                    if self.points[i as usize].dist(&c) <= r {
                        f(i as usize);
                    }
                }
            }
        }
        candidates
    }

    /// Occupancy of every non-empty bucket, in cell order — the cell
    /// occupancy distribution the observability layer histograms at build
    /// time.
    pub fn nonempty_bucket_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        self.starts
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .filter(|&occ| occ > 0)
    }

    /// Collects the indices of all points within distance `r` of `c`.
    pub fn query_disk(&self, c: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_disk(c, r, |i| out.push(i));
        out
    }

    /// Counts the points within distance `r` of `c`.
    pub fn count_in_disk(&self, c: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_in_disk(c, r, |_| n += 1);
        n
    }

    /// Index of the nearest indexed point to `c` that is not `exclude`
    /// (pass `usize::MAX` to exclude nothing). Returns `None` when no
    /// eligible point exists. Ties break towards the smaller index.
    pub fn nearest(&self, c: Point, exclude: usize) -> Option<usize> {
        if self.points.is_empty() || (self.points.len() == 1 && exclude == 0) {
            return None;
        }
        // Expanding ring search: try radii cell, 2*cell, 4*cell, ... until a
        // hit is found, then verify with one final query at the found
        // distance (a closer point could sit in a diagonal bucket).
        let mut r = self.cell;
        loop {
            let mut best: Option<(f64, usize)> = None;
            self.for_each_in_disk(c, r, |i| {
                if i == exclude {
                    return;
                }
                let d = self.points[i].dist_sq(&c);
                match best {
                    Some((bd, bi)) if (d, i) >= (bd, bi) => {}
                    _ => best = Some((d, i)),
                }
            });
            if let Some((d_sq, i)) = best {
                let d = d_sq.sqrt();
                if d <= r {
                    // Confirm: search the exact radius d to catch diagonal
                    // neighbors that the square-of-buckets already covers.
                    let mut confirm = (d_sq, i);
                    self.for_each_in_disk(c, d, |j| {
                        if j == exclude {
                            return;
                        }
                        let dj = self.points[j].dist_sq(&c);
                        if (dj, j) < confirm {
                            confirm = (dj, j);
                        }
                    });
                    return Some(confirm.1);
                }
            }
            r *= 2.0;
            // Bail out once the ring covers the whole point set.
            if r > 4.0 * self.span() + 4.0 * self.cell {
                let mut best: Option<(f64, usize)> = None;
                for (i, p) in self.points.iter().enumerate() {
                    if i == exclude {
                        continue;
                    }
                    let d = p.dist_sq(&c);
                    if best.is_none_or(|(bd, bi)| (d, i) < (bd, bi)) {
                        best = Some((d, i));
                    }
                }
                return best.map(|(_, i)| i);
            }
        }
    }

    fn span(&self) -> f64 {
        let w = self.nx as f64 * self.cell;
        let h = self.ny as f64 * self.cell;
        (w * w + h * h).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_disk(points: &[Point], c: Point, r: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| points[i].dist(&c) <= r)
            .collect()
    }

    #[test]
    fn query_matches_brute_force_on_lattice() {
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(i as f64 * 0.1, j as f64 * 0.1));
            }
        }
        let grid = UniformGrid::build(&pts, 0.25);
        for &(cx, cy, r) in &[(0.5, 0.5, 0.3), (0.0, 0.0, 0.15), (0.95, 0.1, 0.5)] {
            let c = Point::new(cx, cy);
            let mut got = grid.query_disk(c, r);
            got.sort_unstable();
            assert_eq!(got, brute_disk(&pts, c, r));
        }
    }

    #[test]
    fn empty_and_singleton() {
        let grid = UniformGrid::build(&[], 1.0);
        assert!(grid.is_empty());
        assert_eq!(grid.query_disk(Point::ORIGIN, 10.0), Vec::<usize>::new());
        assert_eq!(grid.nearest(Point::ORIGIN, usize::MAX), None);

        let grid = UniformGrid::build(&[Point::new(3.0, 4.0)], 1.0);
        assert_eq!(grid.query_disk(Point::ORIGIN, 5.0), vec![0]);
        assert_eq!(grid.query_disk(Point::ORIGIN, 4.9), Vec::<usize>::new());
        assert_eq!(grid.nearest(Point::ORIGIN, usize::MAX), Some(0));
        assert_eq!(grid.nearest(Point::ORIGIN, 0), None);
    }

    #[test]
    fn nearest_matches_brute_force() {
        // Deterministic pseudo-random points via a simple LCG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Point> = (0..200).map(|_| Point::new(rnd(), rnd())).collect();
        let grid = UniformGrid::build(&pts, 0.05);
        for q in 0..pts.len() {
            let got = grid.nearest(pts[q], q).unwrap();
            let want = (0..pts.len())
                .filter(|&i| i != q)
                .min_by(|&a, &b| {
                    pts[a]
                        .dist_sq(&pts[q])
                        .total_cmp(&pts[b].dist_sq(&pts[q]))
                        .then(a.cmp(&b))
                })
                .unwrap();
            assert_eq!(
                pts[got].dist_sq(&pts[q]),
                pts[want].dist_sq(&pts[q]),
                "q={q} got={got} want={want}"
            );
        }
    }

    #[test]
    fn boundary_points_are_included() {
        // A point exactly at distance r must be reported (closed disk).
        let pts = [Point::ORIGIN, Point::new(1.0, 0.0)];
        let grid = UniformGrid::build(&pts, 0.3);
        assert_eq!(grid.query_disk(Point::ORIGIN, 1.0), vec![0, 1]);
    }

    #[test]
    fn pathological_cell_sizes_stay_bounded() {
        // A nanometer cell over a unit span must not allocate a huge
        // bucket table (regression: exponential-chain radii as cells).
        let pts: Vec<Point> = (0..32)
            .map(|i| Point::on_line((2f64.powi(i) - 1.0) / 2f64.powi(32)))
            .collect();
        let grid = UniformGrid::build(&pts, 2f64.powi(-32));
        let mut got = grid.query_disk(Point::on_line(0.0), 0.5);
        got.sort_unstable();
        assert_eq!(got, brute_disk(&pts, Point::on_line(0.0), 0.5));
        assert_eq!(grid.nearest(pts[5], 5), Some(4));
    }

    #[test]
    fn degenerate_cell_sizes_are_sanitized() {
        // Cell hints of 0, negative, NaN and infinity arise naturally when
        // callers derive the cell from pairwise distances on degenerate
        // inputs (all-coincident points, a single node). All must build a
        // working grid rather than panic.
        let pts = [Point::new(1.0, 2.0), Point::new(4.0, 6.0)];
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let grid = UniformGrid::build(&pts, bad);
            let mut got = grid.query_disk(Point::new(1.0, 2.0), 5.0);
            got.sort_unstable();
            assert_eq!(got, vec![0, 1], "cell={bad}");
            assert_eq!(grid.nearest(Point::new(4.0, 6.0), 1), Some(0));
        }
    }

    #[test]
    fn all_coincident_points() {
        // Zero spread: the bounding box is a single point, so any cell hint
        // (including a degenerate one) must collapse to one bucket.
        let pts = vec![Point::new(2.5, -1.5); 9];
        for cell in [0.0, 1.0, f64::NAN] {
            let grid = UniformGrid::build(&pts, cell);
            assert_eq!(grid.len(), 9);
            assert_eq!(
                grid.query_disk(Point::new(2.5, -1.5), 0.0),
                (0..9).collect::<Vec<_>>(),
                "cell={cell}"
            );
            assert_eq!(grid.count_in_disk(Point::new(2.5, -1.5), 0.0), 9);
            assert!(grid.query_disk(Point::ORIGIN, 1.0).is_empty());
        }
    }

    #[test]
    fn single_node() {
        let pts = [Point::new(7.0, 7.0)];
        for cell in [0.0, 0.5, f64::INFINITY] {
            let grid = UniformGrid::build(&pts, cell);
            assert_eq!(grid.query_disk(Point::new(7.0, 7.0), 0.0), vec![0]);
            assert_eq!(grid.nearest(Point::new(7.0, 7.0), 0), None);
        }
    }

    #[test]
    fn boundary_point_survives_downward_rounding_of_cell_range() {
        // Regression: with c.x = 0.2 and r = dist(0.2, 0.9) the sum
        // `c.x + r` rounds *below* 0.9, and the unmargined cell range
        // excluded the bucket holding the boundary point even though the
        // closed-disk predicate includes it.
        let pts = [
            Point::on_line(0.0),
            Point::on_line(0.2),
            Point::on_line(0.5),
            Point::on_line(0.9),
        ];
        let r = pts[1].dist(&pts[3]);
        let grid = UniformGrid::build(&pts, 0.45);
        assert_eq!(grid.query_disk(pts[1], r), vec![0, 1, 2, 3]);
    }

    #[test]
    fn closed_disk_boundary_semantics() {
        // `for_each_in_disk` must use the *closed* distance-level predicate
        // `dist(p, c) <= r`: a radius copied from a `Point::dist` result
        // keeps the boundary point inside, bit for bit. This is the exact
        // comparison `interference_at` uses, so the two must agree.
        let a = Point::new(0.1, 0.2);
        let b = Point::new(0.7, 0.9);
        let r = a.dist(&b); // irrational; only bit-identical compare passes
        let pts = [a, b];
        let grid = UniformGrid::build(&pts, r / 3.0);
        assert_eq!(grid.query_disk(a, r), vec![0, 1]);
        // The open side: anything strictly below the distance excludes b.
        let below = f64::from_bits(r.to_bits() - 1);
        assert_eq!(grid.query_disk(a, below), vec![0]);
    }

    #[test]
    fn collinear_highway_points() {
        let pts: Vec<Point> = (0..50).map(|i| Point::on_line(i as f64 * 0.02)).collect();
        let grid = UniformGrid::build(&pts, 0.1);
        let mut got = grid.query_disk(Point::on_line(0.5), 0.1);
        got.sort_unstable();
        assert_eq!(got, brute_disk(&pts, Point::on_line(0.5), 0.1));
    }

    #[test]
    fn candidate_count_bounds_the_hits() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1))
            .collect();
        let grid = UniformGrid::build(&pts, 0.2);
        let mut hits = 0usize;
        let candidates = grid.for_each_in_disk_counting(Point::new(0.5, 0.5), 0.25, |_| hits += 1);
        assert!(hits > 0);
        assert!(candidates >= hits, "candidates={candidates} hits={hits}");
        assert!(candidates <= pts.len());
        // Bucket occupancies partition the point set.
        assert_eq!(grid.nonempty_bucket_sizes().sum::<usize>(), pts.len());
        assert!(grid.nonempty_bucket_sizes().all(|occ| occ > 0));
    }
}
