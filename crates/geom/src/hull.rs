//! Convex hull (Andrew's monotone chain).
//!
//! Used by instance analyzers (e.g. to report the spatial extent of a
//! generated workload) and by tests that check generator envelopes.

use crate::point::Point;

/// Returns the indices of the convex hull vertices of `points` in
/// counter-clockwise order, starting from the lexicographically smallest
/// point. Collinear points on hull edges are excluded.
///
/// Degenerate inputs: fewer than three distinct points return all distinct
/// points (sorted lexicographically); fully collinear inputs return the two
/// extreme points.
pub fn convex_hull(points: &[Point]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by(|&a, &b| points[a].lex_cmp(&points[b]).then(a.cmp(&b)));
    order.dedup_by(|&mut a, &mut b| points[a] == points[b]);

    if order.len() <= 2 {
        return order;
    }

    let mut hull: Vec<usize> = Vec::with_capacity(order.len() * 2);
    // Lower hull.
    for &i in &order {
        while hull.len() >= 2 {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if Point::cross(&points[a], &points[b], &points[i]) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in order.iter().rev().skip(1) {
        while hull.len() >= lower_len {
            let a = hull[hull.len() - 2];
            let b = hull[hull.len() - 1];
            if Point::cross(&points[a], &points[b], &points[i]) <= 0.0 {
                hull.pop();
            } else {
                break;
            }
        }
        hull.push(i);
    }
    hull.pop(); // The last point equals the first.

    if hull.len() < 2 {
        // Fully collinear input: return the two extremes.
        // rim-lint: allow(no-unwrap-in-lib) — order is non-empty here
        return vec![order[0], *order.last().unwrap()];
    }
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_hull() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5), // interior
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&4));
        assert_eq!(hull[0], 0); // starts at lexicographic minimum
    }

    #[test]
    fn collinear_points_return_extremes() {
        let pts: Vec<Point> = (0..5).map(|i| Point::on_line(i as f64)).collect();
        let hull = convex_hull(&pts);
        assert_eq!(hull, vec![0, 4]);
    }

    #[test]
    fn collinear_edge_points_excluded() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.0), // on the bottom edge
            Point::new(1.0, 1.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 3);
        assert!(!hull.contains(&2));
    }

    #[test]
    fn tiny_and_duplicate_inputs() {
        assert_eq!(convex_hull(&[]), Vec::<usize>::new());
        assert_eq!(convex_hull(&[Point::ORIGIN]), vec![0]);
        let dup = [Point::ORIGIN, Point::ORIGIN];
        assert_eq!(convex_hull(&dup), vec![0]);
        let two = [Point::new(1.0, 0.0), Point::new(0.0, 0.0)];
        assert_eq!(convex_hull(&two), vec![1, 0]);
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 3.0),
            Point::new(2.0, 5.0),
            Point::new(0.0, 3.0),
            Point::new(2.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        // Shoelace area must be positive for CCW order.
        let mut area2 = 0.0;
        for k in 0..hull.len() {
            let a = pts[hull[k]];
            let b = pts[hull[(k + 1) % hull.len()]];
            area2 += a.x * b.y - b.x * a.y;
        }
        assert!(area2 > 0.0);
        assert!(!hull.contains(&5));
    }
}
