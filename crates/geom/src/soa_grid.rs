//! Structure-of-arrays bucket grid — the million-node spatial index.
//!
//! [`crate::UniformGrid`] answers a disk query by walking bucket item
//! ids and dereferencing each one into a `Vec<Point>`: one indirection
//! (and usually one cache miss) per candidate. At 10^6–10^7 points that
//! indirection *is* the kernel's running time. [`SoaGrid`] removes it:
//! at build time the coordinate columns of a [`SoaPoints`] are permuted
//! into bucket-major order, so a bucket scan reads `sxs[lo..hi]` /
//! `sys[lo..hi]` sequentially and only touches the id column for actual
//! hits. The build itself uses the same cache-blocked bucket fill as
//! [`crate::UniformGrid`] ([`crate::grid::bucket_scatter`]).
//!
//! Query semantics are identical to the other indexes — the *closed*
//! distance-level predicate `dist(p, c) <= r` (see the crate-level
//! floating-point policy) — so results are bit-compatible with
//! [`crate::SpatialIndex`] and the naive scans.

use crate::grid::{bucket_scatter, fits_u32_index, GridCapacityError};
use crate::point::Point;
use crate::soa::SoaPoints;

/// A uniform bucket grid over a [`SoaPoints`] store, with bucket-major
/// coordinate columns for sequential scans.
///
/// Indices reported by queries refer to the original point order of the
/// store the grid was built from.
///
/// ```
/// use rim_geom::{Point, SoaGrid, SoaPoints};
///
/// let pts = SoaPoints::from_points(&[
///     Point::new(0.0, 0.0),
///     Point::new(0.5, 0.0),
///     Point::new(2.0, 2.0),
/// ]);
/// let grid = SoaGrid::build(&pts, 0.5);
/// assert_eq!(grid.query_disk(Point::new(0.1, 0.0), 0.5), vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct SoaGrid {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    starts: Vec<u32>,
    /// Original point ids, bucket-major, insertion-stable per bucket.
    items: Vec<u32>,
    /// X-coordinates permuted into the `items` order.
    sxs: Vec<f64>,
    /// Y-coordinates permuted into the `items` order.
    sys: Vec<f64>,
}

impl SoaGrid {
    /// Builds a grid over `points` with the given `cell` size hint. The
    /// hint is sanitized and budget-clamped exactly as in
    /// [`crate::UniformGrid::build`]: degenerate hints fall back to the
    /// bounding-box diagonal, and cell counts stay `O(n)`.
    ///
    /// Panics if the store exceeds the `u32` item capacity; use
    /// [`SoaGrid::try_build`] to handle that case as an error.
    // rim-lint: allow(panic-freedom) — the capacity assert replaces silent `as u32` id truncation
    pub fn build(points: &SoaPoints, cell: f64) -> Self {
        match Self::try_build(points, cell) {
            Ok(grid) => grid,
            // rim-lint: allow(no-unwrap-in-lib) — intentional capacity assert, fallible twin is try_build
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`SoaGrid::build`]: errors when `points` has
    /// more entries than `u32` bucket item ids can address.
    pub fn try_build(points: &SoaPoints, cell: f64) -> Result<Self, GridCapacityError> {
        let n = points.len();
        if !fits_u32_index(n) {
            return Err(GridCapacityError { points: n });
        }
        rim_obs::counter_add("geom.index.soa_builds", 1);
        let bbox = points.bbox();
        let cell = if cell > 0.0 && cell.is_finite() {
            cell
        } else {
            let diag = if bbox.is_empty() {
                0.0
            } else {
                Point::new(bbox.width(), bbox.height()).norm()
            };
            if diag > 0.0 && diag.is_finite() {
                diag
            } else {
                1.0
            }
        };
        let (origin, nx, ny, cell) = if bbox.is_empty() {
            (Point::ORIGIN, 1, 1, cell)
        } else {
            // Same linear-memory budget as UniformGrid, capped below
            // u32::MAX cells so cell ids fit u32 at any point count.
            let budget = ((8 * n + 1024) as f64).min(4.0e9);
            let mut cell = cell;
            let cells_for = |c: f64| {
                ((bbox.width() / c).floor() + 1.0) * ((bbox.height() / c).floor() + 1.0)
            };
            if cells_for(cell) > budget {
                cell *= (cells_for(cell) / budget).sqrt().max(2.0);
                while cells_for(cell) > budget {
                    cell *= 2.0;
                }
            }
            let nx = (bbox.width() / cell).floor() as usize + 1;
            let ny = (bbox.height() / cell).floor() as usize + 1;
            (bbox.min, nx, ny, cell)
        };

        let ncells = nx * ny;
        let xs = points.xs();
        let ys = points.ys();
        // rim-lint: allow(panic-freedom) — cell coordinates are clamped into the grid
        let cells: Vec<u32> = (0..n)
            .map(|i| {
                let cx = (((xs[i] - origin.x) / cell).floor() as usize).min(nx - 1);
                let cy = (((ys[i] - origin.y) / cell).floor() as usize).min(ny - 1);
                (cy * nx + cx) as u32
            })
            .collect();
        let (starts, items) = bucket_scatter(&cells, ncells);
        // Gather the coordinate columns into bucket order: after this,
        // every bucket scan is a sequential read of both columns.
        let sxs: Vec<f64> = items.iter().map(|&i| xs[i as usize]).collect();
        let sys: Vec<f64> = items.iter().map(|&i| ys[i as usize]).collect();

        Ok(SoaGrid {
            origin,
            cell,
            nx,
            ny,
            starts,
            items,
            sxs,
            sys,
        })
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if the grid indexes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Original point id stored at bucket-order position `k`.
    #[inline]
    // rim-lint: allow(panic-freedom) — positions are caller-validated against len()
    pub fn item(&self, k: usize) -> usize {
        self.items[k] as usize
    }

    /// Coordinates stored at bucket-order position `k` (exact copy of
    /// the original point `self.item(k)`).
    #[inline]
    // rim-lint: allow(panic-freedom) — positions are caller-validated against len()
    pub fn point_at(&self, k: usize) -> Point {
        Point::new(self.sxs[k], self.sys[k])
    }

    /// Calls `f(k)` with the *bucket-order position* of every point with
    /// `dist(points[k], c) <= r`. Positions index [`SoaGrid::item`] /
    /// [`SoaGrid::point_at`]; kernels that iterate the whole store in
    /// bucket order use this variant so neighbor coordinates never go
    /// through the id indirection.
    // rim-lint: allow(panic-freedom) — cell coordinates are clamped to the grid; `starts` has `ncells + 1` entries and bounds the column slices
    pub fn for_each_pos_in_disk<F: FnMut(usize)>(&self, c: Point, r: f64, mut f: F) {
        debug_assert!(r >= 0.0);
        // One extra cell of margin on every side, mirroring UniformGrid:
        // `c.x + r` can round below the coordinate of a point at distance
        // exactly `r`, and the closed predicate must still see it.
        let x0 = ((c.x - r - self.origin.x) / self.cell).floor() - 1.0;
        let x1 = ((c.x + r - self.origin.x) / self.cell).floor() + 1.0;
        let y0 = ((c.y - r - self.origin.y) / self.cell).floor() - 1.0;
        let y1 = ((c.y + r - self.origin.y) / self.cell).floor() + 1.0;
        let cx0 = x0.max(0.0) as usize;
        let cx1 = (x1.max(-1.0) as isize).min(self.nx as isize - 1);
        let cy0 = y0.max(0.0) as usize;
        let cy1 = (y1.max(-1.0) as isize).min(self.ny as isize - 1);
        if cx1 < cx0 as isize || cy1 < cy0 as isize {
            return;
        }
        for cy in cy0..=(cy1 as usize) {
            // Contiguous run of cells within the row: one slice scan per
            // row instead of one per cell keeps the loop tight.
            let row = cy * self.nx;
            let lo = self.starts[row + cx0] as usize;
            let hi = self.starts[row + cx1 as usize + 1] as usize;
            for k in lo..hi {
                // Same formula as Point::dist — sqrt of dx² + dy², then a
                // distance-level closed comparison — so hits agree with
                // the naive scan bit for bit.
                let p = Point::new(self.sxs[k], self.sys[k]);
                if p.dist(&c) <= r {
                    f(k);
                }
            }
        }
    }

    /// Calls `f(i)` for every *original point index* `i` with
    /// `dist(points[i], c) <= r` (closed disk, distance level — the
    /// workspace's exactness policy). Visit order is deterministic:
    /// bucket-major, insertion order within buckets, exactly as
    /// [`crate::UniformGrid::for_each_in_disk`].
    pub fn for_each_in_disk<F: FnMut(usize)>(&self, c: Point, r: f64, mut f: F) {
        self.for_each_pos_in_disk(c, r, |k| f(self.items[k] as usize));
    }

    /// Collects the indices of all points within distance `r` of `c`, in
    /// deterministic bucket-major order.
    pub fn query_disk(&self, c: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_disk(c, r, |i| out.push(i));
        out
    }

    /// Counts the points within distance `r` of `c`.
    pub fn count_in_disk(&self, c: Point, r: f64) -> usize {
        let mut count = 0;
        self.for_each_in_disk(c, r, |_| count += 1);
        count
    }

    /// Distance from the point at *bucket-order position* `k` to its
    /// nearest other indexed point — the streaming nearest-neighbor
    /// radius assignment. Returns `None` for a store with fewer than two
    /// points or an out-of-range position.
    ///
    /// The result is exact: disk queries are closed and complete, so the
    /// minimum found inside a query radius is the global minimum, and
    /// the value is `min dist_sq` followed by a single `sqrt` — bit-equal
    /// to [`Point::dist`] of the closest pair.
    // rim-lint: allow(panic-freedom) — `k` is range-checked; ring search only reads clamped buckets
    pub fn nearest_dist_at(&self, k: usize) -> Option<f64> {
        if self.len() < 2 || k >= self.len() {
            return None;
        }
        let c = Point::new(self.sxs[k], self.sys[k]);
        // Expanding-disk search: a hit inside radius r dominates every
        // unvisited point (all at distance > r >= hit), so the first
        // round with any hit yields the true nearest neighbor.
        let mut r = self.cell;
        loop {
            let mut best: Option<f64> = None;
            self.for_each_pos_in_disk(c, r, |j| {
                if j == k {
                    return;
                }
                let d = Point::new(self.sxs[j], self.sys[j]).dist_sq(&c);
                if best.map_or(true, |b| d < b) {
                    best = Some(d);
                }
            });
            if let Some(d_sq) = best {
                return Some(d_sq.sqrt());
            }
            if r > self.span() + 2.0 * self.cell {
                // The disk covered the whole grid and found nothing but
                // `k` itself: the only way this happens is a degenerate
                // geometry (non-finite coordinates); scan to finish.
                let mut best = f64::INFINITY;
                for j in 0..self.len() {
                    if j != k {
                        best = best.min(Point::new(self.sxs[j], self.sys[j]).dist_sq(&c));
                    }
                }
                return Some(best.sqrt());
            }
            r *= 2.0;
        }
    }

    fn span(&self) -> f64 {
        let w = self.nx as f64 * self.cell;
        let h = self.ny as f64 * self.cell;
        (w * w + h * h).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::UniformGrid;
    use crate::MAX_INDEXED_POINTS;

    fn lcg_points(n: usize, side: f64) -> Vec<Point> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(next() * side, next() * side)).collect()
    }

    #[test]
    fn matches_uniform_grid_queries() {
        let pts = lcg_points(600, 10.0);
        let soa = SoaPoints::from_points(&pts);
        let grid = SoaGrid::build(&soa, 0.7);
        let reference = UniformGrid::build(&pts, 0.7);
        for (qi, q) in pts.iter().enumerate().step_by(17) {
            for r in [0.0, 0.35, 0.7, 1.4, 3.0] {
                let mut got = grid.query_disk(*q, r);
                let mut want: Vec<usize> = Vec::new();
                reference.for_each_in_disk(*q, r, |j| want.push(j));
                got.sort_unstable();
                want.sort_unstable();
                assert_eq!(got, want, "query {qi} r={r}");
            }
        }
        assert_eq!(grid.len(), pts.len());
        assert!(!grid.is_empty());
    }

    #[test]
    fn positions_expose_exact_coordinates() {
        let pts = lcg_points(128, 4.0);
        let soa = SoaPoints::from_points(&pts);
        let grid = SoaGrid::build(&soa, 0.5);
        let mut seen = vec![false; pts.len()];
        for k in 0..grid.len() {
            let i = grid.item(k);
            assert_eq!(grid.point_at(k), pts[i]);
            assert!(!seen[i], "id {i} appears twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Position and id query variants agree.
        let q = pts[3];
        let mut by_pos: Vec<usize> = Vec::new();
        grid.for_each_pos_in_disk(q, 1.0, |k| by_pos.push(grid.item(k)));
        assert_eq!(by_pos, grid.query_disk(q, 1.0));
        assert_eq!(grid.count_in_disk(q, 1.0), by_pos.len());
    }

    #[test]
    fn nearest_dist_matches_naive() {
        let pts = lcg_points(300, 6.0);
        let soa = SoaPoints::from_points(&pts);
        let grid = SoaGrid::build(&soa, 0.4);
        for k in 0..grid.len() {
            let c = grid.point_at(k);
            let want = (0..pts.len())
                .filter(|&j| j != grid.item(k))
                .map(|j| pts[j].dist_sq(&c))
                .fold(f64::INFINITY, f64::min)
                .sqrt();
            let got = grid.nearest_dist_at(k).expect("n >= 2");
            assert_eq!(got.to_bits(), want.to_bits(), "position {k}");
        }
    }

    #[test]
    fn nearest_dist_handles_duplicates_and_small_stores() {
        let empty = SoaGrid::build(&SoaPoints::new(), 1.0);
        assert!(empty.is_empty());
        assert_eq!(empty.nearest_dist_at(0), None);
        let one = SoaGrid::build(&SoaPoints::from_points(&[Point::new(1.0, 1.0)]), 1.0);
        assert_eq!(one.nearest_dist_at(0), None);
        // Coincident points: nearest distance is exactly zero.
        let dup = SoaGrid::build(
            &SoaPoints::from_points(&[Point::new(2.0, 2.0), Point::new(2.0, 2.0)]),
            1.0,
        );
        assert_eq!(dup.nearest_dist_at(0), Some(0.0));
        assert_eq!(dup.nearest_dist_at(1), Some(0.0));
        assert_eq!(dup.nearest_dist_at(2), None);
    }

    #[test]
    fn try_build_reports_capacity() {
        let soa = SoaPoints::from_points(&lcg_points(4, 1.0));
        assert!(SoaGrid::try_build(&soa, 0.5).is_ok());
        assert!(fits_u32_index(MAX_INDEXED_POINTS));
        assert!(!fits_u32_index(MAX_INDEXED_POINTS + 1));
    }

    #[test]
    fn degenerate_hints_fall_back() {
        let pts = lcg_points(50, 3.0);
        let soa = SoaPoints::from_points(&pts);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let grid = SoaGrid::build(&soa, bad);
            assert_eq!(grid.count_in_disk(pts[0], 0.0), 1);
        }
    }
}
