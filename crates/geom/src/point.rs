//! Points in the Euclidean plane.

use std::fmt;
use std::ops::{Add, Div, Mul, Sub};

/// A point in the Euclidean plane.
///
/// The highway model (one-dimensional node distributions) is represented by
/// points with `y == 0.0`; see [`Point::on_line`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Creates a point on the highway (the x-axis).
    #[inline]
    pub const fn on_line(x: f64) -> Self {
        Point { x, y: 0.0 }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::dist`] in hot paths: it avoids the square
    /// root and is exact whenever the coordinates and their differences are.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Chebyshev (`L∞`) distance to `other`; used for grid bucketing.
    #[inline]
    pub fn dist_linf(&self, other: &Point) -> f64 {
        (self.x - other.x).abs().max((self.y - other.y).abs())
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Squared length of the vector from the origin to this point.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Length of the vector from the origin to this point.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Cross product `(b - a) × (c - a)`; positive for a left turn.
    #[inline]
    pub fn cross(a: &Point, b: &Point, c: &Point) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }

    /// Dot product `(b - a) · (c - a)`.
    #[inline]
    pub fn dot(a: &Point, b: &Point, c: &Point) -> f64 {
        (b.x - a.x) * (c.x - a.x) + (b.y - a.y) * (c.y - a.y)
    }

    /// Angle of the vector `other - self` in radians, in `(-π, π]`.
    #[inline]
    pub fn angle_to(&self, other: &Point) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }

    /// Total order on points: by `x`, then by `y` (using `f64::total_cmp`).
    ///
    /// Used wherever a deterministic ordering of point sets is required
    /// (hull construction, scan-line algorithms).
    #[inline]
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn distance_is_zero_iff_equal() {
        let a = Point::new(1.5, -2.25);
        assert_eq!(a.dist_sq(&a), 0.0);
        // Smallest representable perturbation of the y coordinate.
        let b = Point::new(1.5, f64::from_bits((-2.25f64).to_bits() + 1));
        assert!(a.dist_sq(&b) > 0.0);
    }

    #[test]
    fn on_line_has_zero_y() {
        let p = Point::on_line(7.5);
        assert_eq!(p.y, 0.0);
        assert_eq!(p.x, 7.5);
    }

    #[test]
    fn linf_distance() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, -3.0);
        assert_eq!(a.dist_linf(&b), 3.0);
    }

    #[test]
    fn midpoint_is_halfway() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.midpoint(&b), Point::new(1.0, 2.0));
    }

    #[test]
    fn cross_sign_detects_turns() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let left = Point::new(1.0, 1.0);
        let right = Point::new(1.0, -1.0);
        assert!(Point::cross(&a, &b, &left) > 0.0);
        assert!(Point::cross(&a, &b, &right) < 0.0);
        assert_eq!(Point::cross(&a, &b, &Point::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn lex_cmp_total_order() {
        let a = Point::new(0.0, 1.0);
        let b = Point::new(0.0, 2.0);
        let c = Point::new(1.0, 0.0);
        assert!(a.lex_cmp(&b).is_lt());
        assert!(b.lex_cmp(&c).is_lt());
        assert!(a.lex_cmp(&a).is_eq());
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(a / 2.0, Point::new(0.5, 1.0));
    }

    #[test]
    fn angle_to_cardinal_directions() {
        let o = Point::ORIGIN;
        assert_eq!(o.angle_to(&Point::new(1.0, 0.0)), 0.0);
        assert!((o.angle_to(&Point::new(0.0, 1.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.angle_to(&Point::new(-1.0, 0.0)) - std::f64::consts::PI).abs() < 1e-12);
    }
}
