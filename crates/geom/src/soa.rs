//! Structure-of-arrays point storage for million-node kernels.
//!
//! The array-of-structs [`Point`] layout is right for the algorithmic
//! code in this workspace, but the batch interference kernels at 10^6+
//! nodes are bound by memory traffic: a disk-query inner loop that
//! touches `{x, y}` pairs through an index indirection wastes half of
//! every cache line on the coordinate it is not currently comparing and
//! defeats hardware prefetch. [`SoaPoints`] stores the coordinates as
//! two parallel `Vec<f64>` columns so scans stream contiguously; the
//! [`crate::SoaGrid`] built over it additionally *permutes* the columns
//! into bucket order, making every bucket scan a pure sequential read.
//!
//! Coordinates are plain `f64`s with the same finiteness expectations as
//! [`Point`]; conversion helpers are exact in both directions.

use crate::bbox::Aabb;
use crate::point::Point;

/// A set of points stored as two parallel coordinate columns.
///
/// Indices are stable: `get(i)` of a store built with
/// [`SoaPoints::from_points`] equals `points[i]` bit for bit. The store
/// is append-only ([`SoaPoints::push`]) so streaming generators can fill
/// it without materializing an intermediate `Vec<Point>`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaPoints {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SoaPoints {
    /// An empty store.
    pub fn new() -> Self {
        SoaPoints::default()
    }

    /// An empty store with room for `n` points per column.
    pub fn with_capacity(n: usize) -> Self {
        SoaPoints {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    /// Columnar copy of an existing point slice.
    pub fn from_points(points: &[Point]) -> Self {
        SoaPoints {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Appends one point; its index is `len() - 1` afterwards.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns `true` if the store holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Point `i` as a [`Point`] (exact: the coordinates round-trip).
    #[inline]
    // rim-lint: allow(panic-freedom) — indices are caller-validated against len()
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// The x-coordinate column.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// The y-coordinate column.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Bounding box of the stored points (empty box for an empty store).
    pub fn bbox(&self) -> Aabb {
        let mut bbox = Aabb::EMPTY;
        for i in 0..self.len() {
            bbox = bbox.expand(self.get(i));
        }
        bbox
    }

    /// Materializes the row layout (used by adapters that feed SoA data
    /// into the existing `Point`-based APIs; allocates one `Vec`).
    pub fn to_points(&self) -> Vec<Point> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

impl From<&[Point]> for SoaPoints {
    fn from(points: &[Point]) -> Self {
        SoaPoints::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exactly() {
        let pts = [Point::new(0.1, -2.5), Point::new(3.7, 0.0), Point::ORIGIN];
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.len(), 3);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(soa.get(i), *p);
        }
        assert_eq!(soa.to_points(), pts.to_vec());
    }

    #[test]
    fn push_matches_from_points() {
        let mut soa = SoaPoints::with_capacity(2);
        assert!(soa.is_empty());
        soa.push(1.0, 2.0);
        soa.push(-0.5, 0.25);
        let built = SoaPoints::from_points(&[Point::new(1.0, 2.0), Point::new(-0.5, 0.25)]);
        assert_eq!(soa, built);
        assert_eq!(soa.xs(), &[1.0, -0.5]);
        assert_eq!(soa.ys(), &[2.0, 0.25]);
    }

    #[test]
    fn bbox_matches_aabb_of_points() {
        let pts = [Point::new(-1.0, 4.0), Point::new(2.0, -3.0)];
        let soa = SoaPoints::from_points(&pts);
        assert_eq!(soa.bbox(), Aabb::of_points(&pts));
        assert!(SoaPoints::new().bbox().is_empty());
    }
}
