//! Delaunay triangulation (Bowyer–Watson).
//!
//! The "first generation" of topology control (Section 2 of the paper)
//! leaned on structures from computational geometry; the Delaunay
//! triangulation underlies the planar spanners of Li–Calinescu–Wan
//! (reference \[10\]). This is a from-scratch incremental Bowyer–Watson
//! implementation, adequate for the experiment scales (`O(n²)` worst
//! case, near `O(n log n)` on random inputs thanks to point shuffling
//! being unnecessary at our sizes).
//!
//! Degeneracies: cocircular quadruples are resolved by the floating-point
//! in-circle sign (no exact arithmetic); exactly duplicated points are
//! skipped. For the random and structured instances used in this
//! workspace that is sufficient, and the property tests assert the
//! empty-circumcircle invariant within `f64` tolerance.

use crate::point::Point;

/// A triangle as three point indices (counter-clockwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Triangle(pub usize, pub usize, pub usize);

/// Result of a Delaunay triangulation.
#[derive(Debug, Clone)]
pub struct Delaunay {
    /// Triangles with all-real vertices (super-triangle removed), CCW.
    pub triangles: Vec<Triangle>,
    /// Unique Delaunay edges `(u, v)` with `u < v`, sorted.
    pub edges: Vec<(usize, usize)>,
}

/// Computes the Delaunay triangulation of `points`.
///
/// Duplicate points are ignored (first occurrence wins); inputs with
/// fewer than 3 distinct non-collinear points yield no triangles and the
/// edges of their (degenerate) hull.
pub fn delaunay(points: &[Point]) -> Delaunay {
    let n = points.len();
    if n < 2 {
        return Delaunay {
            triangles: Vec::new(),
            edges: Vec::new(),
        };
    }

    // Super-triangle comfortably containing everything.
    let bbox = crate::bbox::Aabb::of_points(points);
    let span = (bbox.width().max(bbox.height())).max(1e-9);
    let cx = (bbox.min.x + bbox.max.x) * 0.5;
    let cy = (bbox.min.y + bbox.max.y) * 0.5;
    // Far enough that circumcircles of real triangles essentially never
    // reach the super vertices (hull triangles with near-collinear
    // vertices have very large circumcircles).
    let s0 = Point::new(cx - 3.0e5 * span, cy - 2.0e5 * span);
    let s1 = Point::new(cx + 3.0e5 * span, cy - 2.0e5 * span);
    let s2 = Point::new(cx, cy + 3.0e5 * span);
    // Work list of points: originals then the three super vertices at
    // indices n, n+1, n+2.
    let mut pts: Vec<Point> = points.to_vec();
    pts.extend([s0, s1, s2]);

    let mut tris: Vec<[usize; 3]> = vec![[n, n + 1, n + 2]];
    let mut seen_dup = std::collections::HashSet::new();

    for (i, p) in points.iter().enumerate() {
        if !seen_dup.insert((p.x.to_bits(), p.y.to_bits())) {
            continue; // exact duplicate
        }
        // Find all triangles whose circumcircle contains p.
        let mut bad: Vec<usize> = Vec::new();
        for (ti, t) in tris.iter().enumerate() {
            if in_circumcircle(&pts, *t, *p) {
                bad.push(ti);
            }
        }
        // Boundary of the cavity: edges appearing in exactly one bad
        // triangle.
        let mut boundary: Vec<(usize, usize)> = Vec::new();
        for &ti in &bad {
            let t = tris[ti];
            for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                let key = (a.min(b), a.max(b));
                if let Some(pos) = boundary
                    .iter()
                    .position(|&(x, y)| (x.min(y), x.max(y)) == key)
                {
                    boundary.swap_remove(pos);
                } else {
                    boundary.push((a, b));
                }
            }
        }
        // Remove bad triangles (descending order keeps indices valid).
        for &ti in bad.iter().rev() {
            tris.swap_remove(ti);
        }
        // Re-triangulate the cavity.
        for (a, b) in boundary {
            tris.push(ccw_triangle(&pts, a, b, i));
        }
    }

    // Strip super-triangle incidences.
    tris.retain(|t| t.iter().all(|&v| v < n));
    let mut edges: Vec<(usize, usize)> = Vec::with_capacity(tris.len() * 3 / 2);
    for t in &tris {
        for (a, b) in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
            edges.push((a.min(b), a.max(b)));
        }
    }
    edges.sort_unstable();
    edges.dedup();

    // Degenerate (collinear) inputs: fall back to chaining the points in
    // lexicographic order so the structure is still connected.
    if edges.is_empty() && n >= 2 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| points[a].lex_cmp(&points[b]).then(a.cmp(&b)));
        order.dedup_by(|&mut a, &mut b| points[a] == points[b]);
        for w in order.windows(2) {
            edges.push((w[0].min(w[1]), w[0].max(w[1])));
        }
        edges.sort_unstable();
    }

    Delaunay {
        triangles: tris
            .into_iter()
            .map(|t| Triangle(t[0], t[1], t[2]))
            .collect(),
        edges,
    }
}

fn ccw_triangle(pts: &[Point], a: usize, b: usize, c: usize) -> [usize; 3] {
    if Point::cross(&pts[a], &pts[b], &pts[c]) >= 0.0 {
        [a, b, c]
    } else {
        [a, c, b]
    }
}

/// In-circle predicate: is `p` strictly inside the circumcircle of the
/// (CCW) triangle `t`?
fn in_circumcircle(pts: &[Point], t: [usize; 3], p: Point) -> bool {
    let (a, b, c) = (pts[t[0]], pts[t[1]], pts[t[2]]);
    // Ensure CCW orientation for the determinant's sign convention.
    let (b, c) = if Point::cross(&a, &b, &c) >= 0.0 {
        (b, c)
    } else {
        (c, b)
    };
    let (ax, ay) = (a.x - p.x, a.y - p.y);
    let (bx, by) = (b.x - p.x, b.y - p.y);
    let (cx, cy) = (c.x - p.x, c.y - p.y);
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by)
        - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_points(n: usize, seed: u64) -> Vec<Point> {
        let mut state = seed;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n).map(|_| Point::new(rnd(), rnd())).collect()
    }

    /// Does the circumcircle of `t` avoid all other points (tolerance for
    /// f64 cocircularity)?
    fn empty_circumcircle(pts: &[Point], t: Triangle) -> bool {
        (0..pts.len())
            .filter(|&i| i != t.0 && i != t.1 && i != t.2)
            .all(|i| !strict_inside_with_margin(pts, [t.0, t.1, t.2], pts[i]))
    }

    fn strict_inside_with_margin(pts: &[Point], t: [usize; 3], p: Point) -> bool {
        // Shrink towards the circumcenter slightly to avoid flagging
        // near-cocircular points as violations.
        let (a, b, c) = (pts[t[0]], pts[t[1]], pts[t[2]]);
        let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
        if d.abs() < 1e-12 {
            return false;
        }
        let ux = ((a.norm_sq()) * (b.y - c.y)
            + (b.norm_sq()) * (c.y - a.y)
            + (c.norm_sq()) * (a.y - b.y))
            / d;
        let uy = ((a.norm_sq()) * (c.x - b.x)
            + (b.norm_sq()) * (a.x - c.x)
            + (c.norm_sq()) * (b.x - a.x))
            / d;
        let center = Point::new(ux, uy);
        let r = center.dist(&a);
        center.dist(&p) < r - 1e-9
    }

    #[test]
    fn square_with_center() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let d = delaunay(&pts);
        assert_eq!(d.triangles.len(), 4, "center splits the square into 4");
        // All hull edges plus the 4 spokes.
        assert_eq!(d.edges.len(), 8);
        for t in &d.triangles {
            assert!(empty_circumcircle(&pts, *t), "{t:?}");
        }
    }

    #[test]
    fn empty_circumcircle_property_on_random_points() {
        for seed in 1..5u64 {
            let pts = pseudo_points(60, seed);
            let d = delaunay(&pts);
            // Euler: for a triangulation of a point set with h hull
            // vertices: T = 2n - h - 2, E = 3n - h - 3.
            let hull = crate::hull::convex_hull(&pts).len();
            assert_eq!(d.triangles.len(), 2 * pts.len() - hull - 2, "seed={seed}");
            assert_eq!(d.edges.len(), 3 * pts.len() - hull - 3, "seed={seed}");
            for t in &d.triangles {
                assert!(empty_circumcircle(&pts, *t), "seed={seed} {t:?}");
            }
        }
    }

    #[test]
    fn contains_the_nearest_neighbor_graph() {
        let pts = pseudo_points(80, 9);
        let d = delaunay(&pts);
        let has = |u: usize, v: usize| d.edges.binary_search(&(u.min(v), u.max(v))).is_ok();
        for u in 0..pts.len() {
            let nn = (0..pts.len())
                .filter(|&v| v != u)
                .min_by(|&a, &b| pts[a].dist_sq(&pts[u]).total_cmp(&pts[b].dist_sq(&pts[u])))
                .unwrap();
            assert!(has(u, nn), "NN edge ({u}, {nn}) missing");
        }
    }

    #[test]
    fn tiny_inputs() {
        assert!(delaunay(&[]).edges.is_empty());
        assert!(delaunay(&[Point::ORIGIN]).edges.is_empty());
        let two = delaunay(&[Point::ORIGIN, Point::new(1.0, 0.0)]);
        assert_eq!(two.edges, vec![(0, 1)]);
        assert!(two.triangles.is_empty());
    }

    #[test]
    fn collinear_points_chain_up() {
        let pts: Vec<Point> = (0..5).map(|i| Point::on_line(i as f64)).collect();
        let d = delaunay(&pts);
        assert!(d.triangles.is_empty());
        assert_eq!(d.edges, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn duplicates_are_tolerated() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 0.0), // duplicate of 0
            Point::new(0.5, 0.8),
        ];
        let d = delaunay(&pts);
        assert_eq!(d.triangles.len(), 1);
    }
}
