//! Adaptive spatial index: a uniform grid with a kd-tree fallback.
//!
//! The interference engine scatters one disk query per transmitter. On
//! uniformly dense instances the [`UniformGrid`] wins by a wide constant
//! factor, but degenerate aspect ratios — the exponential node chain packs
//! half its points into a sliver 2^-n of the span wide — defeat any single
//! cell size: the grid's memory budget inflates the cell until most of the
//! point set lands in one bucket and queries degrade to linear scans. The
//! [`KdTree`] has no cell size to tune and stays logarithmic there.
//!
//! [`SpatialIndex::build`] picks the structure from the data: it measures
//! how badly the grid's budget clamp would distort the requested cell and
//! falls back to the kd-tree past a fixed distortion threshold. Both
//! structures answer disk queries with the identical *closed*
//! distance-level predicate `dist(p, c) <= r` (see the crate-level
//! floating-point policy), so the choice never changes results — only
//! speed.

use crate::bbox::Aabb;
use crate::grid::UniformGrid;
use crate::kdtree::KdTree;
use crate::point::Point;

/// How many times over the grid's cell budget the requested cell may go
/// before the build switches to a kd-tree. At 64x the clamp would enlarge
/// the cell by at least 8x per axis, putting ~64 query radii into every
/// bucket — the point where bucket scans stop being output-sensitive.
const GRID_DISTORTION_LIMIT: f64 = 64.0;

/// A spatial index over a fixed set of points, backed by either a
/// [`UniformGrid`] or a [`KdTree`] — chosen at build time from the spread
/// of the data. Point indices are preserved, and disk queries use the
/// closed distance-level predicate of both backends.
#[derive(Debug, Clone)]
pub enum SpatialIndex {
    /// Uniform bucket grid (dense, well-conditioned instances).
    Grid(UniformGrid),
    /// Balanced kd-tree (degenerate spreads, e.g. exponential chains).
    Kd(KdTree),
}

impl SpatialIndex {
    /// Builds an index over `points`, using `cell_hint` (typically the
    /// dominant query radius) to size grid buckets. Falls back to a
    /// kd-tree when honouring the hint would blow the grid's linear
    /// memory budget by more than a fixed factor — the signature of a
    /// spread-out instance with tiny typical radii, where a clamped grid
    /// would scan most points per query anyway.
    ///
    /// Degenerate hints (non-positive, non-finite) are fine; they are
    /// sanitized exactly as [`UniformGrid::build`] does.
    pub fn build(points: &[Point], cell_hint: f64) -> Self {
        let bbox = Aabb::of_points(points);
        if !bbox.is_empty() && cell_hint > 0.0 && cell_hint.is_finite() {
            let cells =
                ((bbox.width() / cell_hint).floor() + 1.0) * ((bbox.height() / cell_hint).floor() + 1.0);
            let budget = (8 * points.len() + 1024) as f64;
            if cells > budget * GRID_DISTORTION_LIMIT {
                rim_obs::counter_add("geom.index.kd_builds", 1);
                return SpatialIndex::Kd(KdTree::build(points));
            }
        }
        rim_obs::counter_add("geom.index.grid_builds", 1);
        let grid = UniformGrid::build(points, cell_hint);
        if rim_obs::active() {
            for occ in grid.nonempty_bucket_sizes() {
                rim_obs::record("geom.grid.cell_occupancy", occ as u64);
            }
        }
        SpatialIndex::Grid(grid)
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SpatialIndex::Grid(g) => g.len(),
            SpatialIndex::Kd(t) => t.len(),
        }
    }

    /// Returns `true` if the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f(i)` for every point index `i` with `dist(points[i], c) <= r`
    /// (closed disk, distance-level comparison). Visit order depends on the
    /// backend; callers needing determinism must sort.
    ///
    /// When an observability sink is active, each query records its hit
    /// count (and, on the grid backend, the candidate count — occupants
    /// scanned before the distance predicate) as histograms; the enabled
    /// check is a single atomic load, so the disabled path stays on the
    /// plain dispatch below.
    #[inline]
    pub fn for_each_in_disk<F: FnMut(usize)>(&self, c: Point, r: f64, mut f: F) {
        if rim_obs::active() {
            let mut hits = 0u64;
            match self {
                SpatialIndex::Grid(g) => {
                    let candidates = g.for_each_in_disk_counting(c, r, |i| {
                        hits += 1;
                        f(i);
                    });
                    rim_obs::record("geom.index.query_candidates", candidates as u64);
                }
                SpatialIndex::Kd(t) => t.for_each_in_disk(c, r, |i| {
                    hits += 1;
                    f(i);
                }),
            }
            rim_obs::record("geom.index.query_hits", hits);
            return;
        }
        match self {
            SpatialIndex::Grid(g) => g.for_each_in_disk(c, r, f),
            SpatialIndex::Kd(t) => t.for_each_in_disk(c, r, f),
        }
    }

    /// Collects the indices of all points within distance `r` of `c`,
    /// sorted ascending.
    pub fn query_disk(&self, c: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_in_disk(c, r, |i| out.push(i));
        out.sort_unstable();
        out
    }

    /// Counts the points within distance `r` of `c`.
    pub fn count_in_disk(&self, c: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_in_disk(c, r, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_disk(points: &[Point], c: Point, r: f64) -> Vec<usize> {
        (0..points.len())
            .filter(|&i| points[i].dist(&c) <= r)
            .collect()
    }

    #[test]
    fn uniform_instances_pick_the_grid() {
        let pts: Vec<Point> = (0..100)
            .map(|i| Point::new((i % 10) as f64, (i / 10) as f64))
            .collect();
        let idx = SpatialIndex::build(&pts, 1.0);
        assert!(matches!(idx, SpatialIndex::Grid(_)));
        assert_eq!(
            idx.query_disk(Point::new(5.0, 5.0), 1.5),
            brute_disk(&pts, Point::new(5.0, 5.0), 1.5)
        );
    }

    #[test]
    fn exponential_spreads_pick_the_kdtree() {
        // Exponential chain over a unit span: the natural cell hint is the
        // smallest gap, 2^-47 of the span — hopeless for a grid.
        let pts: Vec<Point> = (0..48)
            .map(|i| Point::on_line((2f64.powi(i) - 1.0) / 2f64.powi(48)))
            .collect();
        let hint = pts[1].x - pts[0].x;
        let idx = SpatialIndex::build(&pts, hint);
        assert!(matches!(idx, SpatialIndex::Kd(_)));
        for q in [0usize, 5, 47] {
            assert_eq!(
                idx.query_disk(pts[q], 0.25),
                brute_disk(&pts, pts[q], 0.25),
                "q={q}"
            );
        }
    }

    #[test]
    fn degenerate_hints_build_a_working_index() {
        let pts = [Point::ORIGIN, Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        for hint in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let idx = SpatialIndex::build(&pts, hint);
            assert_eq!(idx.len(), 3);
            assert_eq!(idx.query_disk(Point::new(1.0, 1.0), 0.0), vec![1, 2]);
            assert_eq!(idx.count_in_disk(Point::ORIGIN, 2.0), 3);
        }
        let empty = SpatialIndex::build(&[], 1.0);
        assert!(empty.is_empty());
        assert!(empty.query_disk(Point::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn both_backends_share_closed_disk_semantics() {
        let a = Point::new(0.3, 0.4);
        let b = Point::new(1.1, 2.2);
        let r = a.dist(&b);
        let pts = [a, b];
        let grid = SpatialIndex::Grid(UniformGrid::build(&pts, r));
        let kd = SpatialIndex::Kd(KdTree::build(&pts));
        for idx in [&grid, &kd] {
            assert_eq!(idx.query_disk(a, r), vec![0, 1]);
            let below = f64::from_bits(r.to_bits() - 1);
            assert_eq!(idx.query_disk(a, below), vec![0]);
        }
    }
}
