//! Property-based tests: the fast geometric structures must agree with
//! their brute-force counterparts on arbitrary inputs.

use proptest::prelude::*;
use rim_geom::{closest_pair, closest_pair_brute_force, convex_hull, KdTree, Point, UniformGrid};

fn arb_point() -> impl Strategy<Value = Point> {
    (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec(arb_point(), 0..max)
}

fn brute_disk(points: &[Point], c: Point, r: f64) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| points[i].dist(&c) <= r)
        .collect()
}

proptest! {
    #[test]
    fn grid_disk_query_matches_brute_force(
        pts in arb_points(60),
        q in arb_point(),
        r in 0.0f64..5.0,
        cell in 0.05f64..3.0,
    ) {
        let grid = UniformGrid::build(&pts, cell);
        let mut got = grid.query_disk(q, r);
        got.sort_unstable();
        prop_assert_eq!(got, brute_disk(&pts, q, r));
    }

    #[test]
    fn kdtree_disk_query_matches_brute_force(
        pts in arb_points(60),
        q in arb_point(),
        r in 0.0f64..5.0,
    ) {
        let tree = KdTree::build(&pts);
        prop_assert_eq!(tree.query_disk(q, r), brute_disk(&pts, q, r));
    }

    #[test]
    fn kdtree_nearest_matches_brute_force(pts in arb_points(60), q in arb_point()) {
        let tree = KdTree::build(&pts);
        let got = tree.nearest(q, usize::MAX);
        let want = (0..pts.len()).map(|i| pts[i].dist_sq(&q)).min_by(f64::total_cmp);
        match (got, want) {
            (None, None) => {}
            (Some(i), Some(d)) => prop_assert_eq!(pts[i].dist_sq(&q), d),
            _ => prop_assert!(false, "one of fast/brute found a point, the other did not"),
        }
    }

    #[test]
    fn grid_nearest_matches_brute_force(pts in arb_points(40), q in arb_point(), cell in 0.05f64..3.0) {
        let grid = UniformGrid::build(&pts, cell);
        let got = grid.nearest(q, usize::MAX);
        let want = (0..pts.len()).map(|i| pts[i].dist_sq(&q)).min_by(f64::total_cmp);
        match (got, want) {
            (None, None) => {}
            (Some(i), Some(d)) => prop_assert_eq!(pts[i].dist_sq(&q), d),
            _ => prop_assert!(false, "grid and brute force disagree on existence"),
        }
    }

    #[test]
    fn closest_pair_matches_brute_force(pts in arb_points(80)) {
        let fast = closest_pair(&pts);
        let brute = closest_pair_brute_force(&pts);
        match (fast, brute) {
            (None, None) => {}
            (Some((_, _, df)), Some((_, _, db))) => prop_assert_eq!(df, db),
            _ => prop_assert!(false, "existence mismatch"),
        }
    }

    #[test]
    fn hull_contains_all_points(pts in arb_points(50)) {
        let hull = convex_hull(&pts);
        if hull.len() >= 3 {
            // Every input point must lie inside or on the hull polygon:
            // cross products with every CCW edge must be >= -eps (exactly
            // zero up to f64 rounding of the cross product itself).
            for p in &pts {
                for k in 0..hull.len() {
                    let a = pts[hull[k]];
                    let b = pts[hull[(k + 1) % hull.len()]];
                    prop_assert!(Point::cross(&a, &b, p) >= -1e-9,
                        "point {:?} outside hull edge {:?}->{:?}", p, a, b);
                }
            }
        }
    }
}
