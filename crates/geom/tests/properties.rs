//! Property-based tests: the fast geometric structures must agree with
//! their brute-force counterparts on arbitrary inputs (seeded in-repo
//! harness, `rim_rng::prop`).

use rim_geom::{closest_pair, closest_pair_brute_force, convex_hull, KdTree, Point, UniformGrid};
use rim_rng::prop::check_default;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};

fn arb_point(rng: &mut SmallRng) -> Point {
    Point::new(rng.gen_range(-10.0f64..10.0), rng.gen_range(-10.0f64..10.0))
}

fn arb_points(rng: &mut SmallRng, max: usize) -> Vec<Point> {
    let n = rng.gen_range(0..max);
    (0..n).map(|_| arb_point(rng)).collect()
}

fn brute_disk(points: &[Point], c: Point, r: f64) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| points[i].dist(&c) <= r)
        .collect()
}

#[test]
fn grid_disk_query_matches_brute_force() {
    check_default(
        "grid_disk_query_matches_brute_force",
        |rng| {
            (
                arb_points(rng, 60),
                arb_point(rng),
                rng.gen_range(0.0f64..5.0),
                rng.gen_range(0.05f64..3.0),
            )
        },
        |(pts, q, r, cell)| {
            let grid = UniformGrid::build(pts, *cell);
            let mut got = grid.query_disk(*q, *r);
            got.sort_unstable();
            prop_ensure_eq!(got, brute_disk(pts, *q, *r));
            Ok(())
        },
    );
}

#[test]
fn kdtree_disk_query_matches_brute_force() {
    check_default(
        "kdtree_disk_query_matches_brute_force",
        |rng| (arb_points(rng, 60), arb_point(rng), rng.gen_range(0.0f64..5.0)),
        |(pts, q, r)| {
            let tree = KdTree::build(pts);
            prop_ensure_eq!(tree.query_disk(*q, *r), brute_disk(pts, *q, *r));
            Ok(())
        },
    );
}

#[test]
fn kdtree_nearest_matches_brute_force() {
    check_default(
        "kdtree_nearest_matches_brute_force",
        |rng| (arb_points(rng, 60), arb_point(rng)),
        |(pts, q)| {
            let tree = KdTree::build(pts);
            let got = tree.nearest(*q, usize::MAX);
            let want = (0..pts.len()).map(|i| pts[i].dist_sq(q)).min_by(f64::total_cmp);
            match (got, want) {
                (None, None) => Ok(()),
                (Some(i), Some(d)) => {
                    prop_ensure!(
                        pts[i].dist_sq(q).total_cmp(&d).is_eq(),
                        "kd nearest at {} not minimal",
                        i
                    );
                    Ok(())
                }
                _ => Err("one of fast/brute found a point, the other did not".into()),
            }
        },
    );
}

#[test]
fn grid_nearest_matches_brute_force() {
    check_default(
        "grid_nearest_matches_brute_force",
        |rng| (arb_points(rng, 40), arb_point(rng), rng.gen_range(0.05f64..3.0)),
        |(pts, q, cell)| {
            let grid = UniformGrid::build(pts, *cell);
            let got = grid.nearest(*q, usize::MAX);
            let want = (0..pts.len()).map(|i| pts[i].dist_sq(q)).min_by(f64::total_cmp);
            match (got, want) {
                (None, None) => Ok(()),
                (Some(i), Some(d)) => {
                    prop_ensure!(
                        pts[i].dist_sq(q).total_cmp(&d).is_eq(),
                        "grid nearest at {} not minimal",
                        i
                    );
                    Ok(())
                }
                _ => Err("grid and brute force disagree on existence".into()),
            }
        },
    );
}

#[test]
fn closest_pair_matches_brute_force() {
    check_default(
        "closest_pair_matches_brute_force",
        |rng| arb_points(rng, 80),
        |pts| {
            let fast = closest_pair(pts);
            let brute = closest_pair_brute_force(pts);
            match (fast, brute) {
                (None, None) => Ok(()),
                (Some((_, _, df)), Some((_, _, db))) => {
                    prop_ensure!(
                        df.total_cmp(&db).is_eq(),
                        "closest-pair distance {} != brute {}",
                        df,
                        db
                    );
                    Ok(())
                }
                _ => Err("existence mismatch".into()),
            }
        },
    );
}

#[test]
fn hull_contains_all_points() {
    check_default(
        "hull_contains_all_points",
        |rng| arb_points(rng, 50),
        |pts| {
            let hull = convex_hull(pts);
            if hull.len() >= 3 {
                // Every input point must lie inside or on the hull polygon:
                // cross products with every CCW edge must be >= -eps (exactly
                // zero up to f64 rounding of the cross product itself).
                for p in pts {
                    for k in 0..hull.len() {
                        let a = pts[hull[k]];
                        let b = pts[hull[(k + 1) % hull.len()]];
                        prop_ensure!(
                            Point::cross(&a, &b, p) >= -1e-9,
                            "point {:?} outside hull edge {:?}->{:?}",
                            p,
                            a,
                            b
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
