//! Glue between the disk engines and the `rim-phys` SINR model.
//!
//! Re-exports the physical-layer surface so downstream crates (sim,
//! cli, bench) reach it through `rim_core::physical` without declaring
//! their own `rim-phys` dependency, and hosts the disk-limit adapter
//! the [`crate::receiver::Engine::PhysicalNaive`] /
//! [`crate::receiver::Engine::PhysicalIndexed`] engines dispatch to.

pub use rim_phys::{
    build_phys_index, coverage_range, coverage_vector_indexed, coverage_vector_naive,
    db_to_linear, dbm_to_mw, mw_to_dbm, physical_interference_vector_with,
    sinr_interference_indexed, sinr_interference_naive, sinr_interference_with, standard_normal,
    PhysModel, PhysParams, SinrTable,
};

use rim_udg::Topology;

/// The disk-limit interference vector: instantiate
/// [`PhysModel::disk_equivalent`] over `t` and run the physical
/// coverage kernel. By the disk-limit theorem (`DESIGN.md` §11) the
/// result equals `interference_vector_naive(t)` bit-for-bit — the
/// contract `tests/physical_differential.rs` pins on every instance
/// family.
pub(crate) fn disk_limit_vector(t: &Topology, indexed: bool) -> Vec<usize> {
    let m = PhysModel::disk_equivalent(t);
    physical_interference_vector_with(&m, indexed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::interference_vector_naive;
    use rim_udg::{NodeSet, Topology};

    #[test]
    fn disk_limit_vector_matches_the_oracle_on_a_chain() {
        let t = Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
            &[(0, 1), (1, 2), (2, 3)],
        );
        let oracle = interference_vector_naive(&t);
        assert_eq!(disk_limit_vector(&t, false), oracle);
        assert_eq!(disk_limit_vector(&t, true), oracle);
    }
}
