//! Exact minimum-interference connected topologies (branch and bound).
//!
//! The paper's approximation guarantees (Theorem 5.6) are relative to the
//! *optimal* connectivity-preserving topology. To measure approximation
//! ratios empirically we need that optimum on small instances; this module
//! computes it exactly.
//!
//! # Search space
//!
//! A topology is any symmetric subgraph of the UDG, but interference only
//! depends on the radii it induces. We therefore search over **radius
//! assignments** `r : V → {0} ∪ {pairwise distances ≤ max_range}`, with
//! the induced symmetric graph `{u,v} ∈ E ⟺ |uv| ≤ min(r_u, r_v)`:
//!
//! * every topology `E'` tightens to the assignment `r_u = farthest
//!   neighbor in E'`, whose induced graph has the same radii and
//!   interference and at least the same connectivity, so the assignment
//!   optimum equals the topology optimum;
//! * under an assignment, node `u` covers a *fixed* set of nodes, so
//!   partial assignments give a valid interference lower bound for
//!   pruning.
//!
//! # Pruning
//!
//! 1. **Bound**: the maximum coverage already inflicted by assigned nodes
//!    can only grow — prune when it reaches the incumbent. Coverage is
//!    monotone in the radius, so once a candidate radius trips the bound,
//!    all larger candidates do too.
//! 2. **Feasibility**: give every unassigned node its largest candidate
//!    radius; if even that maximal completion fails to preserve the UDG's
//!    connectivity, no completion can (shrinking radii only removes
//!    edges).
//!
//! The incumbent is seeded with the Euclidean-MST topology, which is
//! always feasible and usually close, so pruning bites immediately.

use rim_graph::mst::kruskal;
use rim_graph::traversal::preserves_connectivity;
use rim_graph::AdjacencyList;
use rim_udg::radius::{candidate_radii, induced_graph, induced_topology};
use rim_udg::udg::unit_disk_graph_with_range;
use rim_udg::{NodeSet, Topology};

/// Resource limits for the exact solver.
#[derive(Debug, Clone, Copy)]
pub struct SolverLimits {
    /// Hard cap on instance size; larger inputs panic (the search is
    /// exponential — this guards against accidental misuse).
    pub max_nodes: usize,
    /// Search-step budget. When exhausted the best topology found so far
    /// is returned with `optimal = false`.
    pub max_steps: u64,
}

impl Default for SolverLimits {
    fn default() -> Self {
        SolverLimits {
            max_nodes: 12,
            max_steps: 50_000_000,
        }
    }
}

/// Result of an exact minimization.
#[derive(Debug, Clone)]
pub struct OptimalResult {
    /// A minimum-interference connectivity-preserving topology (best
    /// found if the budget ran out).
    pub topology: Topology,
    /// Its graph interference `I(G')`.
    pub interference: usize,
    /// `true` if the search completed and the result is provably optimal.
    pub optimal: bool,
    /// Search steps consumed.
    pub steps: u64,
}

/// Computes a minimum-interference topology preserving the connectivity of
/// the UDG with range `max_range` over `nodes`.
///
/// Panics if `nodes.len() > limits.max_nodes`.
pub fn min_interference_topology(
    nodes: &NodeSet,
    max_range: f64,
    limits: SolverLimits,
) -> OptimalResult {
    let n = nodes.len();
    assert!(
        n <= limits.max_nodes,
        "exact solver limited to {} nodes, got {n}",
        limits.max_nodes
    );
    if n <= 1 {
        return OptimalResult {
            topology: Topology::empty(nodes.clone()),
            interference: 0,
            optimal: true,
            steps: 0,
        };
    }

    let udg = unit_disk_graph_with_range(nodes, max_range);

    // Candidate radii per node, ascending, truncated to the UDG range.
    let cands: Vec<Vec<f64>> = (0..n)
        .map(|u| {
            let mut c = candidate_radii(nodes, u);
            c.retain(|&r| r <= max_range);
            c
        })
        .collect();
    // rim-lint: allow(no-unwrap-in-lib) — candidate_radii always contains 0.0
    let max_cand: Vec<f64> = cands.iter().map(|c| *c.last().unwrap()).collect();

    // Incumbent: the MST of the UDG (tight assignment, always feasible).
    let mst_topology = Topology::from_graph(
        nodes.clone(),
        AdjacencyList::from_edges(n, &kruskal(n, &udg.edges())),
    );
    let best_radii: Vec<f64> = mst_topology.radii().to_vec();
    let best = crate::receiver::graph_interference(&mst_topology);

    let mut search = Search {
        nodes,
        n,
        udg: &udg,
        cands: &cands,
        max_cand: &max_cand,
        cov: vec![0u32; n],
        radii: vec![0.0; n],
        best,
        best_radii,
        steps: 0,
        max_steps: limits.max_steps,
        exhausted: false,
    };
    search.dfs(0);
    let steps = search.steps;
    let exhausted = search.exhausted;

    let topology = induced_topology(nodes, &search.best_radii);
    let interference = crate::receiver::graph_interference(&topology);
    debug_assert!(interference <= search.best);
    OptimalResult {
        topology,
        interference,
        optimal: !exhausted,
        steps,
    }
}

struct Search<'a> {
    nodes: &'a NodeSet,
    n: usize,
    udg: &'a AdjacencyList,
    cands: &'a [Vec<f64>],
    max_cand: &'a [f64],
    /// cov[v] = number of *assigned* nodes covering v.
    cov: Vec<u32>,
    radii: Vec<f64>,
    best: usize,
    best_radii: Vec<f64>,
    steps: u64,
    max_steps: u64,
    exhausted: bool,
}

impl Search<'_> {
    fn dfs(&mut self, k: usize) {
        if self.exhausted {
            return;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.exhausted = true;
            return;
        }
        if k == self.n {
            // Feasibility was verified when the last node was assigned.
            let inter = self.cov.iter().copied().max().unwrap_or(0) as usize;
            if inter < self.best {
                self.best = inter;
                self.best_radii.copy_from_slice(&self.radii);
            }
            return;
        }

        let pk = self.nodes.pos(k);
        // Nodes newly covered as the radius grows: walk candidates in
        // ascending order and extend coverage incrementally.
        let mut covered: Vec<usize> = Vec::new();
        let mut cursor = 0usize; // over `others` sorted by distance
        let mut others: Vec<(f64, usize)> = (0..self.n)
            .filter(|&v| v != k)
            .map(|v| (pk.dist(&self.nodes.pos(v)), v))
            .collect();
        others.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));

        for ci in 0..self.cands[k].len() {
            let r = self.cands[k][ci];
            while cursor < others.len() && others[cursor].0 <= r {
                let v = others[cursor].1;
                self.cov[v] += 1;
                covered.push(v);
                cursor += 1;
            }
            // Bound: coverage is monotone in r — once the incumbent is
            // matched, larger radii are hopeless too.
            let worst = self.cov.iter().copied().max().unwrap_or(0) as usize;
            if worst >= self.best {
                break;
            }
            self.radii[k] = r;
            if self.feasible(k) {
                self.dfs(k + 1);
                if self.exhausted {
                    break;
                }
            }
        }
        // Undo coverage.
        for v in covered {
            self.cov[v] -= 1;
        }
        self.radii[k] = 0.0;
    }

    /// Optimistic completion: unassigned nodes take their largest radius.
    /// If even that graph fails to preserve UDG connectivity, prune.
    fn feasible(&self, k: usize) -> bool {
        let mut radii = self.radii.clone();
        for (v, r) in radii.iter_mut().enumerate().skip(k + 1) {
            *r = self.max_cand[v];
        }
        let g = induced_graph(self.nodes, &radii);
        preserves_connectivity(self.udg, &g)
    }
}

/// Independent test oracle: minimum interference over **all** subgraphs of
/// the UDG (edge-subset enumeration, `O(2^m)`), used to validate the
/// branch-and-bound solver on tiny instances.
pub fn min_interference_exhaustive(nodes: &NodeSet, max_range: f64) -> Option<usize> {
    let udg = unit_disk_graph_with_range(nodes, max_range);
    let edges = udg.edges();
    let m = edges.len();
    assert!(m <= 20, "exhaustive oracle limited to 20 edges, got {m}");
    let mut best: Option<usize> = None;
    for mask in 0..(1u32 << m) {
        let chosen: Vec<(usize, usize)> = (0..m)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| edges[i].pair())
            .collect();
        let t = Topology::from_pairs(nodes.clone(), &chosen);
        if !t.preserves_connectivity_of(&udg) {
            continue;
        }
        let i = crate::receiver::graph_interference(&t);
        if best.is_none_or(|b| i < b) {
            best = Some(i);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;

    #[test]
    fn trivial_instances() {
        let r = min_interference_topology(&NodeSet::new(vec![]), 1.0, SolverLimits::default());
        assert_eq!(r.interference, 0);
        assert!(r.optimal);
        let r = min_interference_topology(&NodeSet::on_line(&[0.3]), 1.0, SolverLimits::default());
        assert_eq!(r.interference, 0);
    }

    #[test]
    fn two_nodes_must_link() {
        let ns = NodeSet::on_line(&[0.0, 0.5]);
        let r = min_interference_topology(&ns, 1.0, SolverLimits::default());
        assert_eq!(r.interference, 1);
        assert!(r.optimal);
        assert_eq!(r.topology.num_edges(), 1);
    }

    #[test]
    fn disconnected_udg_components_stay_separate() {
        // Two pairs far apart: optimum links each pair, I = 1.
        let ns = NodeSet::on_line(&[0.0, 0.2, 5.0, 5.2]);
        let r = min_interference_topology(&ns, 1.0, SolverLimits::default());
        assert_eq!(r.interference, 1);
        assert!(r.optimal);
        assert_eq!(r.topology.num_edges(), 2);
    }

    #[test]
    fn uniform_chain_optimum_is_small() {
        let ns = NodeSet::on_line(&[0.0, 0.5, 1.0, 1.5, 2.0]);
        let r = min_interference_topology(&ns, 1.0, SolverLimits::default());
        // Linear chain: each node covered by at most 2 neighbors.
        assert_eq!(r.interference, 2);
        assert!(r.optimal);
        assert!(r.topology.preserves_connectivity_of(
            &unit_disk_graph_with_range(&ns, 1.0)
        ));
    }

    #[test]
    fn matches_exhaustive_oracle_on_random_instances() {
        let mut state = 99u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for trial in 0..8 {
            let n = 4 + (trial % 3);
            // Keep instances sparse enough for the oracle's 20-edge cap.
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(rnd() * 2.2, rnd() * 0.4))
                .collect();
            let ns = NodeSet::new(pts);
            let udg = unit_disk_graph_with_range(&ns, 1.0);
            if udg.num_edges() > 12 {
                continue;
            }
            let oracle = min_interference_exhaustive(&ns, 1.0).unwrap();
            let solver = min_interference_topology(&ns, 1.0, SolverLimits::default());
            assert!(solver.optimal, "budget must suffice for n={n}");
            assert_eq!(solver.interference, oracle, "trial={trial}");
        }
    }

    #[test]
    fn result_preserves_connectivity_and_range() {
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.6, 0.1),
            Point::new(0.9, 0.7),
            Point::new(0.2, 0.8),
            Point::new(1.4, 0.6),
        ]);
        let r = min_interference_topology(&ns, 1.0, SolverLimits::default());
        let udg = unit_disk_graph_with_range(&ns, 1.0);
        assert!(r.topology.preserves_connectivity_of(&udg));
        assert!(r.topology.respects_range(1.0));
    }

    #[test]
    fn budget_exhaustion_returns_incumbent() {
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5]);
        let r = min_interference_topology(
            &ns,
            1.0,
            SolverLimits {
                max_nodes: 12,
                max_steps: 2,
            },
        );
        assert!(!r.optimal);
        // Incumbent is the MST topology — still valid.
        let udg = unit_disk_graph_with_range(&ns, 1.0);
        assert!(r.topology.preserves_connectivity_of(&udg));
    }

    #[test]
    #[should_panic]
    fn oversized_instances_are_rejected() {
        let ns = NodeSet::on_line(&(0..20).map(|i| i as f64 * 0.01).collect::<Vec<_>>());
        min_interference_topology(&ns, 1.0, SolverLimits::default());
    }
}
