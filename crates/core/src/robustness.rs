//! Robustness of the interference measure under node arrival/departure.
//!
//! The paper's key structural argument (Section 1, Figure 1): in the
//! receiver-centric model each node contributes **at most one** unit of
//! interference to any other node — whatever its radius — so the arrival
//! of a single node raises `I(v)` by at most 1 plus whatever *existing*
//! nodes enlarge their disks to accommodate the newcomer. In the
//! sender-centric model of \[2\] a single arrival can instead drag the
//! measure from `O(1)` to `n`, because one new long link charges its
//! entire coverage to the measure at once.
//!
//! This module provides the machinery to measure those deltas on concrete
//! instances; the Figure 1 instance itself lives in `rim-workloads`.

use crate::receiver::interference_vector;
use crate::sender::sender_graph_interference;
use rim_udg::{NodeSet, Topology};

/// Per-node interference change between two topologies over the first
/// `old_n` nodes (the nodes present in `before`).
///
/// `after` may have more nodes (arrivals) — they are ignored; node
/// indices `0..old_n` must refer to the same positions in both.
pub fn interference_deltas(before: &Topology, after: &Topology, old_n: usize) -> Vec<isize> {
    assert!(old_n <= before.num_nodes() && old_n <= after.num_nodes());
    for v in 0..old_n {
        assert_eq!(
            before.nodes().pos(v),
            after.nodes().pos(v),
            "node {v} moved between before/after"
        );
    }
    let ib = interference_vector(before);
    let ia = interference_vector(after);
    (0..old_n).map(|v| ia[v] as isize - ib[v] as isize).collect()
}

/// How much interference a single node `u` contributes to every other
/// node: 1 if `u`'s disk covers that node, else 0.
///
/// By construction the result is at most 1 everywhere — the structural
/// reason the receiver-centric measure is robust.
pub fn contribution_of(t: &Topology, u: usize) -> Vec<u8> {
    let nodes = t.nodes();
    if t.graph().degree(u) == 0 {
        return vec![0; nodes.len()]; // isolated nodes transmit nothing
    }
    let r = t.radius(u);
    let pu = nodes.pos(u);
    (0..nodes.len())
        .map(|v| u8::from(v != u && pu.dist(&nodes.pos(v)) <= r))
        .collect()
}

/// Outcome of a node-arrival experiment under both interference models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalImpact {
    /// Receiver-centric `I(G')` before the arrival.
    pub receiver_before: usize,
    /// Receiver-centric `I(G')` after the arrival.
    pub receiver_after: usize,
    /// Sender-centric (link coverage) measure before.
    pub sender_before: usize,
    /// Sender-centric measure after.
    pub sender_after: usize,
    /// Maximum per-node receiver-centric increase over the old nodes.
    pub max_receiver_delta: isize,
}

/// Runs a node-arrival experiment: build a topology on `base`, then on
/// `base + newcomer`, with the same topology-control algorithm, and report
/// both interference measures before and after.
///
/// `build` receives the node set and must return a topology over exactly
/// those nodes (any algorithm from `rim-topology-control` or `rim-highway`
/// fits through a closure).
pub fn arrival_impact<F>(base: &NodeSet, newcomer: rim_geom::Point, build: F) -> ArrivalImpact
where
    F: Fn(&NodeSet) -> Topology,
{
    let before = build(base);
    assert_eq!(before.num_nodes(), base.len(), "builder changed node count");
    let grown = base.with_node(newcomer);
    let after = build(&grown);
    assert_eq!(after.num_nodes(), grown.len(), "builder changed node count");
    let deltas = interference_deltas(&before, &after, base.len());
    ArrivalImpact {
        receiver_before: crate::receiver::graph_interference(&before),
        receiver_after: crate::receiver::graph_interference(&after),
        sender_before: sender_graph_interference(&before),
        sender_after: sender_graph_interference(&after),
        max_receiver_delta: deltas.into_iter().max().unwrap_or(0),
    }
}

/// One step of a growth trajectory: the interference measures right
/// after the `k`-th node joined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrowthStep {
    /// Network size after the arrival.
    pub n: usize,
    /// Receiver-centric `I(G')`.
    pub receiver: usize,
    /// Sender-centric link-coverage measure.
    pub sender: usize,
}

/// Replays an entire arrival sequence: nodes join one at a time (in the
/// order given), the topology is rebuilt by `build` after every arrival,
/// and both interference measures are recorded.
///
/// This generalizes the single-arrival Figure 1 experiment to a network
/// lifetime: the receiver-centric curve grows smoothly (bounded slope by
/// the robustness argument), while the sender-centric curve can jump by
/// `Θ(n)` at a single arrival.
pub fn growth_trajectory<F>(points: &[rim_geom::Point], build: F) -> Vec<GrowthStep>
where
    F: Fn(&NodeSet) -> Topology,
{
    let mut out = Vec::with_capacity(points.len());
    for k in 1..=points.len() {
        let ns = NodeSet::new(points[..k].to_vec());
        let t = build(&ns);
        assert_eq!(t.num_nodes(), k, "builder changed node count");
        out.push(GrowthStep {
            n: k,
            receiver: crate::receiver::graph_interference(&t),
            sender: sender_graph_interference(&t),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;

    /// Linear chain builder: connect consecutive nodes in x-order.
    fn linear(ns: &NodeSet) -> Topology {
        let order = ns.order_by_x();
        let pairs: Vec<(usize, usize)> = order.windows(2).map(|w| (w[0], w[1])).collect();
        Topology::from_pairs(ns.clone(), &pairs)
    }

    #[test]
    fn contribution_is_at_most_one_everywhere() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.5, 0.9]);
        let t = linear(&ns);
        for u in 0..ns.len() {
            for &c in &contribution_of(&t, u) {
                assert!(c <= 1);
            }
        }
    }

    #[test]
    fn deltas_zero_when_nothing_changes() {
        let ns = NodeSet::on_line(&[0.0, 0.3, 0.7]);
        let t = linear(&ns);
        let deltas = interference_deltas(&t, &t, 3);
        assert_eq!(deltas, vec![0, 0, 0]);
    }

    #[test]
    fn arrival_at_chain_end_changes_little() {
        // Uniform chain; the newcomer extends it by one hop on the right.
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.2, 0.3]);
        let impact = arrival_impact(&ns, Point::on_line(0.4), linear);
        // Old rightmost node now has a right neighbor; interference near
        // the right end grows by at most a small constant.
        assert!(impact.max_receiver_delta <= 2);
        assert!(impact.receiver_after <= impact.receiver_before + 2);
    }

    #[test]
    fn interference_vector_sums_contributions() {
        let ns = NodeSet::on_line(&[0.0, 0.15, 0.45, 1.0]);
        let t = linear(&ns);
        let iv = crate::receiver::interference_vector(&t);
        let mut sums = vec![0usize; ns.len()];
        for u in 0..ns.len() {
            for (v, &c) in contribution_of(&t, u).iter().enumerate() {
                sums[v] += c as usize;
            }
        }
        assert_eq!(iv, sums);
    }

    #[test]
    fn growth_trajectory_records_every_arrival() {
        let pts: Vec<Point> = (0..6).map(|i| Point::on_line(i as f64 * 0.2)).collect();
        let steps = growth_trajectory(&pts, linear);
        assert_eq!(steps.len(), 6);
        assert_eq!(steps[0], GrowthStep { n: 1, receiver: 0, sender: 0 });
        assert_eq!(steps[1].n, 2);
        assert_eq!(steps[1].receiver, 1);
        // A uniform chain's receiver interference saturates at 2.
        assert!(steps.iter().all(|s| s.receiver <= 2));
        // Sizes ascend.
        for (k, s) in steps.iter().enumerate() {
            assert_eq!(s.n, k + 1);
        }
    }

    #[test]
    #[should_panic]
    fn moved_nodes_are_rejected() {
        let a = linear(&NodeSet::on_line(&[0.0, 0.5]));
        let b = linear(&NodeSet::on_line(&[0.0, 0.6]));
        interference_deltas(&a, &b, 2);
    }
}
