//! Incrementally maintained interference under link and node updates.
//!
//! Topology-control algorithms (and dynamic networks) repeatedly tweak an
//! edge set and re-ask for `I(G')`. Recomputing from scratch is `O(n²)`
//! per query; [`DynamicInterference`] maintains the per-node coverage
//! counts across updates:
//!
//! * a node covers `v` iff it has at least one neighbor and
//!   `|uv| <= r_u` — the same rule as the batch kernels;
//! * an edge update changes at most the two endpoints' radii (and whether
//!   they transmit at all), so only the *symmetric difference of the old
//!   and new disks* `D(u, r_old) Δ D(u, r_new)` needs patching. A spatial
//!   index over the node positions turns that patch into one disk query
//!   of radius `max(r_old, r_new)` — `O(affected)` for bounded densities
//!   instead of `O(n)`;
//! * [`DynamicInterference::insert_node`] appends a node and charges only
//!   the transmitters whose disks reach it (found through the same
//!   index), keeping arrivals `O(affected)` too;
//! * `I(G') = max_v I(v)` is answered in `O(1)` from a frequency
//!   histogram over the coverage counts, maintained at every ±1 change.
//!
//! The index is rebuilt lazily: newly inserted nodes accumulate in a
//! small `pending` overlay that queries scan linearly, and once the
//! overlay outgrows a fraction of the indexed set the index is rebuilt in
//! one `O(n)` pass — classic amortization, no query ever misses a node.
//! The equivalence with the batch [`crate::receiver`] kernels is
//! property-tested, including full edit-trace replays.
//!
//! **Physical (fixed-radii) mode.** Under the SINR model a node's
//! coverage radius `ρ_u` comes from its transmit power, not from its
//! farthest neighbor, so edge updates never move the radius — they only
//! flip whether the node transmits at all. [`DynamicInterference::new_physical`]
//! pins the per-node radii and routes every edge update through the
//! same symmetric-difference patch with `new_r = old_r`, which reduces
//! to a pure gating patch over the fixed disk.

use rim_geom::{Point, SpatialIndex};
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Interference counts maintained across edge and node updates.
#[derive(Debug, Clone)]
pub struct DynamicInterference {
    points: Vec<Point>,
    graph: AdjacencyList,
    radii: Vec<f64>,
    cov: Vec<u32>,
    /// Liveness per slot. Departed nodes are tombstoned — the slot keeps
    /// its position (ids stay stable, the spatial index never needs a
    /// deletion path) but is dead: it accepts no edges, receives no
    /// coverage, and leaves the histogram. Long-churn callers compact by
    /// rebuilding from [`DynamicInterference::live_topology`].
    alive: Vec<bool>,
    /// Number of live slots (`alive.iter().filter(|a| **a).count()`).
    live: usize,
    /// Whether each node was transmitting (degree > 0) at the last
    /// coverage update — needed to patch coverage when a node's degree
    /// crosses zero without its radius changing (zero-length links).
    was_transmitting: Vec<bool>,
    /// Spatial index over `points[..indexed_len]`; nodes inserted since
    /// the last rebuild live in the pending overlay `indexed_len..n`.
    index: SpatialIndex,
    indexed_len: usize,
    /// `freq[c]` = number of nodes with coverage count `c`; `cur_max` is
    /// the largest `c` with `freq[c] > 0` (0 when all counts are 0).
    freq: Vec<u32>,
    cur_max: usize,
    /// Monotone upper bound on every current radius, used to bound the
    /// candidate search of [`DynamicInterference::insert_node`]. Radius
    /// shrinkage only loosens the bound (still correct, just a wider
    /// query); it is re-tightened to the exact maximum at every index
    /// rebuild.
    radius_bound: f64,
    /// Physical mode: radii are power-derived constants (coverage radii
    /// `ρ_u`), so edge updates only flip transmit gating.
    fixed_radii: bool,
}

impl DynamicInterference {
    /// Starts from the empty topology over `nodes`.
    pub fn new(nodes: NodeSet) -> Self {
        let n = nodes.len();
        let points = nodes.points().to_vec();
        let index = SpatialIndex::build(&points, initial_cell_hint(&points));
        DynamicInterference {
            points,
            graph: AdjacencyList::new(n),
            radii: vec![0.0; n],
            cov: vec![0; n],
            alive: vec![true; n],
            live: n,
            was_transmitting: vec![false; n],
            index,
            indexed_len: n,
            freq: vec![n as u32],
            cur_max: 0,
            radius_bound: 0.0,
            fixed_radii: false,
        }
    }

    /// Starts from an existing topology.
    pub fn from_topology(t: &Topology) -> Self {
        let mut d = DynamicInterference::new(t.nodes().clone());
        for e in t.edges() {
            d.insert_edge(e.u, e.v);
        }
        d
    }

    /// Starts from the empty edge set over `nodes` in **physical mode**:
    /// node `u`'s coverage radius is pinned at `coverage_radii[u]`
    /// (power-derived, e.g. [`crate::physical::PhysModel::coverage_radius`])
    /// and edge updates only flip whether `u` transmits.
    pub fn new_physical(nodes: NodeSet, coverage_radii: &[f64]) -> Self {
        assert_eq!(nodes.len(), coverage_radii.len(), "one coverage radius per node");
        let mut d = DynamicInterference::new(nodes);
        for &r in coverage_radii {
            assert!(r >= 0.0 && r.is_finite(), "coverage radii must be finite and >= 0");
        }
        d.radii.copy_from_slice(coverage_radii);
        d.fixed_radii = true;
        d
    }

    /// Starts physical-mode maintenance from a [`crate::physical::PhysModel`]
    /// and the topology it was instantiated over: pins each node's
    /// coverage radius `ρ_u` and replays the topology's edges. The
    /// resulting counts equal `coverage_vector_naive(m)` (differential-
    /// tested), and stay equal under subsequent edge edits.
    pub fn from_physical(t: &Topology, m: &crate::physical::PhysModel) -> Self {
        assert_eq!(t.num_nodes(), m.len(), "model and topology must agree on the node set");
        let radii: Vec<f64> = (0..m.len()).map(|u| m.coverage_radius(u)).collect();
        let mut d = DynamicInterference::new_physical(t.nodes().clone(), &radii);
        for e in t.edges() {
            d.insert_edge(e.u, e.v);
        }
        d
    }

    /// Whether this structure runs in physical (fixed-radii) mode.
    pub fn is_physical(&self) -> bool {
        self.fixed_radii
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` for the empty node set.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Whether slot `v` holds a live (non-departed) node.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn is_live(&self, v: usize) -> bool {
        self.alive[v]
    }

    /// Number of live nodes: [`DynamicInterference::len`] minus
    /// tombstoned departures.
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Current interference of `v`.
    pub fn interference_at(&self, v: usize) -> usize {
        self.cov[v] as usize
    }

    /// Current graph interference `I(G')`, answered in `O(1)` from the
    /// maintained coverage-count histogram.
    pub fn graph_interference(&self) -> usize {
        self.cur_max
    }

    /// The maintained coverage-count histogram: entry `c` is the number
    /// of **live** nodes with coverage count exactly `c`, trimmed so no
    /// trailing zero entries leak representation details (the internal
    /// vector only ever grows). Departed nodes are not counted.
    pub fn coverage_histogram(&self) -> Vec<u32> {
        let mut h = self.freq.clone();
        while h.len() > 1 && h.last() == Some(&0) {
            h.pop();
        }
        h
    }

    /// Current radius of `u`.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn radius(&self, u: usize) -> f64 {
        self.radii[u]
    }

    /// Position of slot `u` (stable for the slot's lifetime; positions
    /// are never mutated in place — mobility is depart + arrive).
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn position(&self, u: usize) -> Point {
        self.points[u]
    }

    /// The maintained edge structure.
    pub fn graph(&self) -> &AdjacencyList {
        &self.graph
    }

    /// Materializes the current state as a [`Topology`] over *every*
    /// slot, dead ones included (they appear as isolated vertices). This
    /// is the raw slot view; for comparing against batch kernels — which
    /// would charge coverage *to* an isolated dead slot — use
    /// [`DynamicInterference::live_topology`].
    pub fn as_topology(&self) -> Topology {
        Topology::from_graph(NodeSet::new(self.points.clone()), self.graph.clone())
    }

    /// Materializes the live state as a compacted [`Topology`], plus the
    /// slot id behind each compacted node (ascending slot order). Dead
    /// slots are dropped entirely, so a batch recompute over the result
    /// is directly comparable with the maintained counts — this is the
    /// view the replay-differential tests use.
    // rim-lint: allow(panic-freedom) — compact[] covers every slot; edges connect live slots
    pub fn live_topology(&self) -> (Topology, Vec<usize>) {
        let slots: Vec<usize> = (0..self.len()).filter(|&v| self.alive[v]).collect();
        let mut compact = vec![usize::MAX; self.len()];
        for (i, &v) in slots.iter().enumerate() {
            compact[v] = i;
        }
        let pts: Vec<Point> = slots.iter().map(|&v| self.points[v]).collect();
        let mut g = AdjacencyList::new(slots.len());
        for e in self.graph.edges() {
            g.add_edge(compact[e.u], compact[e.v], e.weight);
        }
        (Topology::from_graph(NodeSet::new(pts), g), slots)
    }

    /// Inserts `{u, v}`; returns `false` if the edge already existed or
    /// either endpoint has departed. Costs one disk query per endpoint
    /// whose radius (or transmit status) changed — `O(affected)`.
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the structure
    pub fn insert_edge(&mut self, u: usize, v: usize) -> bool {
        if !self.alive[u] || !self.alive[v] {
            return false;
        }
        let d = self.points[u].dist(&self.points[v]);
        if !self.graph.add_edge(u, v, d) {
            return false;
        }
        rim_obs::counter_add("dynamic.edge_inserts", 1);
        if self.fixed_radii {
            // Physical mode: the radius is power-derived and does not
            // move; only the transmit gating of the endpoints can flip.
            self.set_radius(u, self.radii[u]);
            self.set_radius(v, self.radii[v]);
        } else {
            self.set_radius(u, self.radii[u].max(d));
            self.set_radius(v, self.radii[v].max(d));
        }
        true
    }

    /// Removes `{u, v}`; returns `false` if the edge was absent.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if !self.graph.remove_edge(u, v) {
            return false;
        }
        rim_obs::counter_add("dynamic.edge_removes", 1);
        if self.fixed_radii {
            self.set_radius(u, self.radii[u]);
            self.set_radius(v, self.radii[v]);
        } else {
            let ru = self.graph.max_incident_weight(u).unwrap_or(0.0);
            let rv = self.graph.max_incident_weight(v).unwrap_or(0.0);
            self.set_radius(u, ru);
            self.set_radius(v, rv);
        }
        true
    }

    /// Appends a new isolated node at `p` and returns its index.
    ///
    /// The arrival is charged `O(affected)`: the new node starts with the
    /// coverage it receives from existing transmitters (one pass over the
    /// candidates within the current maximum radius, via the index) and,
    /// being isolated, contributes nothing itself until an edge arrives.
    /// The spatial index absorbs the node lazily — see the module docs.
    pub fn insert_node(&mut self, p: Point) -> usize {
        assert!(p.is_finite(), "node positions must be finite");
        rim_obs::counter_add("dynamic.node_inserts", 1);
        let v = self.graph.add_vertex();
        self.points.push(p);
        self.radii.push(0.0);
        self.alive.push(true);
        self.live += 1;
        self.was_transmitting.push(false);
        // Coverage received by the newcomer: every transmitter whose disk
        // reaches p. Candidates are bounded by the maintained radius bound.
        let r_max = self.radius_bound;
        let mut covered_by = 0u32;
        self.for_each_candidate(p, r_max, |u, d| {
            if u != v && self.was_transmitting[u] && d <= self.radii[u] {
                covered_by += 1;
            }
        });
        self.cov.push(covered_by);
        self.histogram_add(covered_by as usize);
        self.maybe_rebuild_index();
        v
    }

    /// Appends a new isolated node at `p` with a pinned coverage radius
    /// — the physical-mode arrival (the radius is power-derived, known
    /// at arrival time, and independent of future edges). The node stays
    /// silent until its first edge, so only its *received* coverage is
    /// charged here, exactly as in [`DynamicInterference::insert_node`].
    pub fn insert_node_with_radius(&mut self, p: Point, coverage_r: f64) -> usize {
        assert!(coverage_r >= 0.0 && coverage_r.is_finite(), "coverage radius must be finite and >= 0");
        let v = self.insert_node(p);
        if let Some(r) = self.radii.last_mut() {
            *r = coverage_r;
        }
        v
    }

    /// Removes (tombstones) node `v`: drops each incident edge through
    /// the usual symmetric-difference patch — so neighbors' radii
    /// re-tighten and every count `v`'s disk was charging is released —
    /// then retires the coverage `v` itself was receiving from the
    /// histogram and marks the slot dead. Departures are `O(affected)`
    /// like every other edit. Returns `false` if `v` had already
    /// departed.
    ///
    /// Slot ids stay stable: the dead slot keeps its position but
    /// accepts no edges, receives no coverage, and is excluded from
    /// [`DynamicInterference::live_topology`]. Insert-then-remove is an
    /// exact no-op on the surviving nodes' counts and on the histogram
    /// (regression-tested).
    // rim-lint: allow(panic-freedom) — v is a maintained node id; per-node vectors grow in lockstep
    pub fn remove_node(&mut self, v: usize) -> bool {
        if !self.alive[v] {
            return false;
        }
        rim_obs::counter_add("dynamic.node_removes", 1);
        let nbrs: Vec<usize> = self.graph.neighbors(v).collect();
        for w in nbrs {
            self.remove_edge(v, w);
        }
        // v is now silent (degree 0 ⇒ not transmitting); what remains is
        // the coverage it was *receiving*, which leaves the histogram
        // with the node.
        let c = self.cov[v] as usize;
        self.histogram_remove(c);
        self.cov[v] = 0;
        self.alive[v] = false;
        self.live -= 1;
        true
    }

    /// Calls `f(u, dist(points[u], c))` for every node within distance
    /// `r` of `c`: indexed nodes via one disk query, pending nodes via a
    /// linear scan of the (small, amortized) overlay.
    fn for_each_candidate<F: FnMut(usize, f64)>(&self, c: Point, r: f64, mut f: F) {
        self.index
            .for_each_in_disk(c, r, |u| f(u, self.points[u].dist(&c)));
        for u in self.indexed_len..self.points.len() {
            let d = self.points[u].dist(&c);
            if d <= r {
                f(u, d);
            }
        }
    }

    /// Rebuilds the spatial index once the pending overlay outgrows half
    /// the indexed set (with a constant floor so small structures never
    /// rebuild): `O(n)` per rebuild, amortized `O(1)` per insertion.
    // rim-lint: allow(panic-freedom) — indexed_len <= points.len() by construction
    fn maybe_rebuild_index(&mut self) {
        let pending = self.points.len() - self.indexed_len;
        if pending > (self.indexed_len / 2).max(64) {
            rim_obs::counter_add("dynamic.index_rebuilds", 1);
            self.index = SpatialIndex::build(&self.points, initial_cell_hint(&self.points));
            self.indexed_len = self.points.len();
            // Re-tighten the radius bound to the exact maximum while we
            // are paying O(n) anyway.
            self.radius_bound = self
                .radii
                .iter()
                .copied()
                .max_by(f64::total_cmp)
                .unwrap_or(0.0);
        }
    }

    /// Moves one node's coverage count from `old` to `new` in the
    /// histogram, keeping `cur_max` exact in amortized `O(1)`.
    // rim-lint: allow(panic-freedom) — `old` was previously added, so freq[old] exists; `new` is resized in
    fn histogram_move(&mut self, old: usize, new: usize) {
        self.freq[old] -= 1;
        if new >= self.freq.len() {
            self.freq.resize(new + 1, 0);
        }
        self.freq[new] += 1;
        if new > self.cur_max {
            self.cur_max = new;
        } else if old == self.cur_max && self.freq[old] == 0 {
            while self.cur_max > 0 && self.freq[self.cur_max] == 0 {
                self.cur_max -= 1;
            }
        }
    }

    /// Retires a node leaving the histogram at count `c` (departures).
    // rim-lint: allow(panic-freedom) — `c` was previously added, so freq[c] exists and is > 0
    fn histogram_remove(&mut self, c: usize) {
        self.freq[c] -= 1;
        if c == self.cur_max && self.freq[c] == 0 {
            while self.cur_max > 0 && self.freq[self.cur_max] == 0 {
                self.cur_max -= 1;
            }
        }
    }

    /// Registers a fresh node entering the histogram at count `c`.
    // rim-lint: allow(panic-freedom) — freq is resized to cover `c` before indexing
    fn histogram_add(&mut self, c: usize) {
        if c >= self.freq.len() {
            self.freq.resize(c + 1, 0);
        }
        self.freq[c] += 1;
        if c > self.cur_max {
            self.cur_max = c;
        }
    }

    /// Adjusts `u`'s radius and patches the coverage counts over the
    /// symmetric difference of the old and new disks.
    ///
    /// Coverage is `deg(u) > 0 && d <= r_u` (a node transmits iff it has a
    /// neighbor — matching the batch kernels, including the coincident-node
    /// case where a zero-length link gives `r_u = 0` but still covers its
    /// endpoint). Both disks are contained in the disk of the larger
    /// radius, so one index query of radius `max(old, new)` visits every
    /// node whose membership can differ; comparing covered-before vs
    /// covered-after per node is immune to boundary subtleties at `d = 0`.
    // rim-lint: allow(panic-freedom) — u is a maintained node id; per-node vectors grow in lockstep
    fn set_radius(&mut self, u: usize, new_r: f64) {
        let old_r = self.radii[u];
        let was_tx = self.was_transmitting[u];
        let is_tx = self.graph.degree(u) > 0;
        self.was_transmitting[u] = is_tx;
        // rim-lint: allow(float-eq) — exact no-op check: radii are dist() copies
        if new_r == old_r && was_tx == is_tx {
            return;
        }
        self.radii[u] = new_r;
        self.radius_bound = self.radius_bound.max(new_r);
        let pu = self.points[u];
        let query_r = match (was_tx, is_tx) {
            (true, true) => old_r.max(new_r),
            (true, false) => old_r,
            (false, true) => new_r,
            (false, false) => return, // silent before and after: no disk at all
        };
        let mut deltas: Vec<(usize, usize, usize)> = Vec::new();
        let mut affected = 0u64;
        self.for_each_candidate(pu, query_r, |w, d| {
            if w == u || !self.alive[w] {
                return; // dead slots receive no coverage
            }
            affected += 1;
            let before = was_tx && d <= old_r;
            let after = is_tx && d <= new_r;
            if before != after {
                let old_c = self.cov[w] as usize;
                let new_c = if after { old_c + 1 } else { old_c - 1 };
                deltas.push((w, old_c, new_c));
            }
        });
        if rim_obs::active() {
            // affected = candidates the symmetric-difference query visited;
            // patch_size = nodes whose coverage actually changed.
            rim_obs::record("dynamic.affected_candidates", affected);
            rim_obs::record("dynamic.patch_size", deltas.len() as u64);
        }
        for (w, old_c, new_c) in deltas {
            self.cov[w] = new_c as u32;
            self.histogram_move(old_c, new_c);
        }
    }

    /// Exports the maintained state for snapshotting. The result is
    /// complete: [`DynamicInterference::from_state`] rebuilds a structure
    /// whose observable behavior — counts, histogram, `I(G')`, *and* the
    /// amortization schedule of future edits — is bit-identical to this
    /// one's. `indexed_len` pins the spatial index's era (the pending
    /// overlay is exactly the slots past it) and `radius_bound` the
    /// monotone candidate bound; everything else (coverage counts,
    /// histogram, transmit gating, edge weights) is derivable and is
    /// recomputed on restore.
    pub fn export_state(&self) -> DynState {
        DynState {
            points: self.points.clone(),
            radii: self.radii.clone(),
            alive: self.alive.clone(),
            edges: self
                .graph
                .edges()
                .iter()
                .map(|e| (e.u as u32, e.v as u32))
                .collect(),
            indexed_len: self.indexed_len,
            radius_bound: self.radius_bound,
            fixed_radii: self.fixed_radii,
        }
    }

    /// Rebuilds a structure from a previously exported [`DynState`],
    /// validating every field (a corrupted snapshot yields an error, not
    /// a panic or a silently wrong structure).
    ///
    /// Restoration is exact because the spatial index is a pure function
    /// of `points[..indexed_len]` — positions are never mutated in
    /// place, only appended (mobility is modeled as depart + arrive) —
    /// so rebuilding it over that prefix reproduces the original
    /// bit-for-bit, pending overlay included. Coverage counts are
    /// recomputed from the same predicate the incremental patches
    /// maintain, which the differential tests pin equal.
    // rim-lint: allow(panic-freedom) — every index below is validated before use
    pub fn from_state(s: DynState) -> Result<Self, String> {
        let n = s.points.len();
        if s.radii.len() != n || s.alive.len() != n {
            return Err(format!(
                "state vectors disagree: {n} points, {} radii, {} alive flags",
                s.radii.len(),
                s.alive.len()
            ));
        }
        if s.indexed_len > n {
            return Err(format!("indexed_len {} exceeds node count {n}", s.indexed_len));
        }
        if s.points.iter().any(|p| !p.is_finite()) {
            return Err("non-finite node position".to_string());
        }
        let mut max_r = 0.0f64;
        for &r in &s.radii {
            if !(r.is_finite() && r >= 0.0) {
                return Err(format!("radius {r} must be finite and >= 0"));
            }
            max_r = max_r.max(r);
        }
        if !(s.radius_bound.is_finite() && s.radius_bound >= max_r) {
            return Err(format!(
                "radius_bound {} below the maximum radius {max_r}",
                s.radius_bound
            ));
        }
        let mut graph = AdjacencyList::new(n);
        for &(eu, ev) in &s.edges {
            let (u, v) = (eu as usize, ev as usize);
            if u >= n || v >= n || u == v {
                return Err(format!("edge ({u}, {v}) out of range"));
            }
            if !s.alive[u] || !s.alive[v] {
                return Err(format!("edge ({u}, {v}) touches a departed slot"));
            }
            // Weights are re-derived: dist() is a pure function of the
            // (validated) positions, so nothing else needs encoding.
            if !graph.add_edge(u, v, s.points[u].dist(&s.points[v])) {
                return Err(format!("duplicate edge ({u}, {v})"));
            }
        }
        let index = SpatialIndex::build(
            &s.points[..s.indexed_len],
            initial_cell_hint(&s.points[..s.indexed_len]),
        );
        let live = s.alive.iter().filter(|&&a| a).count();
        let was_transmitting: Vec<bool> = (0..n).map(|u| s.alive[u] && graph.degree(u) > 0).collect();
        let mut d = DynamicInterference {
            points: s.points,
            graph,
            radii: s.radii,
            cov: vec![0; n],
            alive: s.alive,
            live,
            was_transmitting,
            index,
            indexed_len: s.indexed_len,
            freq: vec![0],
            cur_max: 0,
            radius_bound: s.radius_bound,
            fixed_radii: s.fixed_radii,
        };
        let mut cov = vec![0u32; n];
        for u in 0..n {
            if !d.was_transmitting[u] {
                continue;
            }
            let (pu, ru) = (d.points[u], d.radii[u]);
            d.for_each_candidate(pu, ru, |w, dist| {
                if w != u && d.alive[w] && dist <= ru {
                    cov[w] += 1;
                }
            });
        }
        d.cov = cov;
        for v in 0..n {
            if d.alive[v] {
                d.histogram_add(d.cov[v] as usize);
            }
        }
        Ok(d)
    }
}

/// Raw maintained state of a [`DynamicInterference`] — everything a
/// snapshot needs to rebuild the structure exactly, produced by
/// [`DynamicInterference::export_state`] and consumed by
/// [`DynamicInterference::from_state`]. Derived state (coverage counts,
/// histogram, transmit gating, edge weights) is deliberately absent: it
/// is recomputed on restore from the same predicates that maintain it,
/// so a snapshot cannot encode an inconsistent structure.
#[derive(Debug, Clone, PartialEq)]
pub struct DynState {
    /// Every slot's position, dead slots included (ids are stable).
    pub points: Vec<Point>,
    /// Per-slot radius: link-derived, or pinned when `fixed_radii`.
    pub radii: Vec<f64>,
    /// Per-slot liveness; dead slots have no edges, no disk, and no
    /// histogram entry.
    pub alive: Vec<bool>,
    /// Undirected edges between live slots.
    pub edges: Vec<(u32, u32)>,
    /// How many leading slots the spatial index covers; the rest are the
    /// pending overlay.
    pub indexed_len: usize,
    /// Monotone upper bound on every radius since the last index rebuild.
    pub radius_bound: f64,
    /// Physical (fixed-radii) mode flag.
    pub fixed_radii: bool,
}

/// Cell hint for the dynamic structure's index: the node-set diagonal
/// scaled to roughly √n cells per axis. Radii are unknown at build time
/// (edges come later), so a density-based hint is the best available;
/// `SpatialIndex::build` sanitizes degenerate values.
fn initial_cell_hint(points: &[Point]) -> f64 {
    let bbox = rim_geom::Aabb::of_points(points);
    if bbox.is_empty() {
        return 1.0;
    }
    let diag = Point::new(bbox.width(), bbox.height()).norm();
    let per_axis = (points.len() as f64).sqrt().max(1.0);
    diag / per_axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::interference_vector;
    use rim_geom::Point;

    fn check_consistent(d: &DynamicInterference) {
        let (t, slots) = d.live_topology();
        let want = interference_vector(&t);
        let got: Vec<usize> = slots.iter().map(|&v| d.interference_at(v)).collect();
        assert_eq!(got, want, "dynamic counts diverged from batch kernel");
        assert_eq!(
            d.graph_interference(),
            want.iter().copied().max().unwrap_or(0),
            "histogram max diverged"
        );
        // Dead slots must hold no coverage and take no histogram space.
        for v in 0..d.len() {
            if !d.is_live(v) {
                assert_eq!(d.interference_at(v), 0, "dead slot {v} holds coverage");
            }
        }
        assert_eq!(
            d.coverage_histogram().iter().map(|&c| c as usize).sum::<usize>(),
            d.live_count(),
            "histogram mass != live node count"
        );
    }

    #[test]
    fn insert_then_remove_roundtrips() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.5, 0.9]);
        let mut d = DynamicInterference::new(ns);
        assert!(d.insert_edge(0, 1));
        check_consistent(&d);
        assert!(d.insert_edge(1, 3));
        check_consistent(&d);
        assert!(d.insert_edge(2, 3));
        check_consistent(&d);
        assert!(!d.insert_edge(0, 1), "duplicate");
        assert!(d.remove_edge(1, 3));
        check_consistent(&d);
        assert!(!d.remove_edge(1, 3), "already gone");
        assert!(d.remove_edge(0, 1));
        assert!(d.remove_edge(2, 3));
        check_consistent(&d);
        assert_eq!(d.graph_interference(), 0);
    }

    #[test]
    fn matches_from_topology_constructor() {
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.3),
            Point::new(0.9, 0.1),
            Point::new(0.5, 0.8),
        ]);
        let t = Topology::from_pairs(ns, &[(0, 1), (1, 2), (1, 3)]);
        let d = DynamicInterference::from_topology(&t);
        check_consistent(&d);
        assert_eq!(d.graph_interference(), crate::receiver::graph_interference(&t));
    }

    #[test]
    fn random_update_sequences_stay_consistent() {
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let n = 9;
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 3) as f64 * 0.4 + (rnd() % 100) as f64 * 0.001, (i / 3) as f64 * 0.4))
            .collect();
        let mut d = DynamicInterference::new(NodeSet::new(pts));
        for step in 0..200 {
            let (a, b) = (rnd() % n, rnd() % n);
            if a == b {
                continue;
            }
            if d.graph().has_edge(a, b) {
                d.remove_edge(a, b);
            } else {
                d.insert_edge(a, b);
            }
            if step % 10 == 0 {
                check_consistent(&d);
            }
        }
        check_consistent(&d);
    }

    #[test]
    fn coincident_nodes_stay_consistent() {
        // Zero-length links: radius stays 0 but the endpoints transmit.
        let ns = NodeSet::new(vec![Point::ORIGIN, Point::ORIGIN, Point::new(0.5, 0.0)]);
        let mut d = DynamicInterference::new(ns);
        assert!(d.insert_edge(0, 1));
        check_consistent(&d); // 0 and 1 cover each other at d = 0
        assert!(d.insert_edge(0, 2));
        check_consistent(&d);
        assert!(d.remove_edge(0, 2)); // radius shrinks back to 0, still transmitting
        check_consistent(&d);
        assert!(d.remove_edge(0, 1)); // now silent again
        check_consistent(&d);
        assert_eq!(d.graph_interference(), 0);
    }

    #[test]
    fn node_insertion_is_absorbed() {
        let mut d = DynamicInterference::new(NodeSet::on_line(&[0.0, 0.3]));
        d.insert_edge(0, 1);
        // The new node lands inside both existing disks.
        let v = d.insert_node(Point::on_line(0.15));
        assert_eq!(v, 2);
        assert_eq!(d.interference_at(v), 2);
        check_consistent(&d);
        // Link it up; radii of 2 and 0 change, counts follow.
        d.insert_edge(2, 0);
        check_consistent(&d);
        // A far-away arrival sees nothing and changes nothing.
        let w = d.insert_node(Point::on_line(100.0));
        assert_eq!(d.interference_at(w), 0);
        check_consistent(&d);
    }

    #[test]
    fn many_insertions_cross_the_rebuild_threshold() {
        // Push enough nodes through the pending overlay to force at least
        // one index rebuild, checking consistency as we go.
        let mut d = DynamicInterference::new(NodeSet::on_line(&[0.0, 0.01]));
        d.insert_edge(0, 1);
        for i in 0..150usize {
            let v = d.insert_node(Point::new((i % 25) as f64 * 0.05, (i / 25) as f64 * 0.05));
            if i % 3 == 0 {
                d.insert_edge(v, i % 2);
            }
            if i % 40 == 0 {
                check_consistent(&d);
            }
        }
        check_consistent(&d);
    }

    /// Satellite regression for the `remove_node` asymmetry fix:
    /// arriving, linking up, unlinking, and departing must restore the
    /// *exact* prior state — per-node counts, radii, `I(G')`, and the
    /// full coverage-count histogram.
    #[test]
    fn insert_then_remove_node_restores_prior_state() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.5, 0.9]);
        let mut d = DynamicInterference::new(ns);
        d.insert_edge(0, 1);
        d.insert_edge(1, 2);
        d.insert_edge(2, 3);
        let counts: Vec<usize> = (0..4).map(|v| d.interference_at(v)).collect();
        let radii: Vec<f64> = (0..4).map(|v| d.radius(v)).collect();
        let max = d.graph_interference();
        let hist = d.coverage_histogram();

        // A well-connected arrival right in the middle of the instance.
        let v = d.insert_node(Point::on_line(0.45));
        d.insert_edge(v, 1);
        d.insert_edge(v, 2);
        d.insert_edge(v, 3);
        check_consistent(&d);
        assert_ne!(d.coverage_histogram(), hist, "the arrival must be visible");

        assert!(d.remove_node(v));
        check_consistent(&d);
        assert!(!d.remove_node(v), "double departure");
        assert!(!d.is_live(v));
        assert_eq!(d.live_count(), 4);
        assert!(!d.insert_edge(v, 0), "dead slots accept no edges");

        let counts_after: Vec<usize> = (0..4).map(|u| d.interference_at(u)).collect();
        let radii_after: Vec<f64> = (0..4).map(|u| d.radius(u)).collect();
        assert_eq!(counts_after, counts, "counts must be restored exactly");
        assert_eq!(d.graph_interference(), max);
        assert_eq!(d.coverage_histogram(), hist, "histogram must be restored exactly");
        for (a, b) in radii_after.iter().zip(&radii) {
            // rim-lint: allow(float-eq) — radii are dist() copies; restoration must be exact
            assert!(a == b, "radius drifted: {a} vs {b}");
        }
    }

    #[test]
    fn removing_a_hub_patches_every_neighbor() {
        // A star: the hub's disk covers everyone; removing it must
        // release all of that coverage and re-tighten leaf radii to 0.
        let ns = NodeSet::on_line(&[0.0, -0.3, 0.3, -0.6, 0.6]);
        let mut d = DynamicInterference::new(ns);
        for leaf in 1..5 {
            d.insert_edge(0, leaf);
        }
        check_consistent(&d);
        assert!(d.remove_node(0));
        check_consistent(&d);
        assert_eq!(d.graph_interference(), 0, "leaves are isolated now");
        for leaf in 1..5 {
            // rim-lint: allow(float-eq) — exact: radius re-derived from an empty edge set
            assert!(d.radius(leaf) == 0.0);
        }
        // Surviving nodes keep editing normally around the tombstone.
        assert!(d.insert_edge(1, 2));
        check_consistent(&d);
        let w = d.insert_node(Point::on_line(0.05));
        assert!(d.insert_edge(w, 1));
        check_consistent(&d);
    }

    #[test]
    fn churning_updates_stay_consistent_with_departures() {
        let mut state = 11u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let pts: Vec<Point> = (0..12)
            .map(|i| Point::new((i % 4) as f64 * 0.3, (i / 4) as f64 * 0.3))
            .collect();
        let mut d = DynamicInterference::new(NodeSet::new(pts));
        for step in 0..300 {
            match rnd() % 10 {
                0 => {
                    let x = (rnd() % 100) as f64 * 0.012;
                    let y = (rnd() % 100) as f64 * 0.012;
                    d.insert_node(Point::new(x, y));
                }
                1 if d.live_count() > 3 => {
                    // Depart a random live slot.
                    let mut v = rnd() % d.len();
                    while !d.is_live(v) {
                        v = (v + 1) % d.len();
                    }
                    d.remove_node(v);
                }
                _ => {
                    let (a, b) = (rnd() % d.len(), rnd() % d.len());
                    if a != b && d.is_live(a) && d.is_live(b) {
                        if d.graph().has_edge(a, b) {
                            d.remove_edge(a, b);
                        } else {
                            d.insert_edge(a, b);
                        }
                    }
                }
            }
            if step % 25 == 0 {
                check_consistent(&d);
            }
        }
        check_consistent(&d);
    }

    #[test]
    fn export_restore_roundtrips_exactly() {
        // Build a structure with edges, arrivals past the rebuild
        // threshold, and departures; restore must reproduce it exactly
        // and then *behave* identically on further edits.
        let mut d = DynamicInterference::new(NodeSet::on_line(&[0.0, 0.1, 0.25]));
        d.insert_edge(0, 1);
        d.insert_edge(1, 2);
        for i in 0..90usize {
            let v = d.insert_node(Point::new((i % 10) as f64 * 0.07, (i / 10) as f64 * 0.07));
            if i % 4 == 0 {
                d.insert_edge(v, i % 3);
            }
            if i % 7 == 0 && d.live_count() > 5 {
                d.remove_node(3 + (i % 30));
            }
        }
        check_consistent(&d);

        let s = d.export_state();
        let mut r = DynamicInterference::from_state(s.clone()).expect("exported state is valid");
        assert_eq!(r.export_state(), s, "restore must re-export identically");
        assert_eq!(r.live_count(), d.live_count());
        assert_eq!(r.graph_interference(), d.graph_interference());
        assert_eq!(r.coverage_histogram(), d.coverage_histogram());
        let dc: Vec<usize> = (0..d.len()).map(|v| d.interference_at(v)).collect();
        let rc: Vec<usize> = (0..r.len()).map(|v| r.interference_at(v)).collect();
        assert_eq!(rc, dc, "restored counts diverge");

        // Drive both copies through the same edit tail: every observable
        // must stay in lockstep (this is the bit-exact replay property
        // the churn snapshot layer builds on).
        for i in 0..40usize {
            let p = Point::new(0.03 * i as f64, 0.5);
            assert_eq!(d.insert_node(p), r.insert_node(p));
            if i % 3 == 0 {
                let v = d.len() - 1;
                assert_eq!(d.insert_edge(v, 0), r.insert_edge(v, 0));
            }
            if i % 5 == 0 {
                let v = 4 + i;
                assert_eq!(d.remove_node(v), r.remove_node(v));
            }
            assert_eq!(d.graph_interference(), r.graph_interference());
        }
        assert_eq!(d.export_state(), r.export_state(), "divergence after the edit tail");
        check_consistent(&d);
        check_consistent(&r);
    }

    #[test]
    fn from_state_rejects_corrupted_snapshots() {
        let mut d = DynamicInterference::new(NodeSet::on_line(&[0.0, 0.4]));
        d.insert_edge(0, 1);
        d.remove_node(1);
        let good = d.export_state();
        assert!(DynamicInterference::from_state(good.clone()).is_ok());

        let mut bad = good.clone();
        bad.radii.pop();
        assert!(DynamicInterference::from_state(bad).is_err(), "length mismatch");

        let mut bad = good.clone();
        bad.indexed_len = 99;
        assert!(DynamicInterference::from_state(bad).is_err(), "indexed_len overflow");

        let mut bad = good.clone();
        bad.edges.push((0, 1));
        assert!(DynamicInterference::from_state(bad).is_err(), "edge to a dead slot");

        let mut bad = good.clone();
        bad.edges.push((0, 7));
        assert!(DynamicInterference::from_state(bad).is_err(), "edge out of range");

        let mut bad = good.clone();
        bad.radius_bound = f64::NAN;
        assert!(DynamicInterference::from_state(bad).is_err(), "NaN bound");

        let mut bad = good.clone();
        bad.radii[0] = -1.0;
        assert!(DynamicInterference::from_state(bad).is_err(), "negative radius");

        let mut bad = good;
        bad.radius_bound = 0.0; // below the surviving radius
        bad.radii[0] = 0.5;
        assert!(DynamicInterference::from_state(bad).is_err(), "bound below max radius");
    }

    #[test]
    fn physical_mode_departure_keeps_pinned_radii() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.5]);
        let radii = [0.6, 0.3, 0.45];
        let mut d = DynamicInterference::new_physical(ns, &radii);
        d.insert_edge(0, 1);
        d.insert_edge(1, 2);
        check_physical_consistent(&d, &radii);
        assert!(d.remove_node(1));
        // Survivors keep their pinned radii and their gating.
        // rim-lint: allow(float-eq) — pinned radii must be bit-identical
        assert!(d.radius(0) == 0.6 && d.radius(2) == 0.45);
        assert_eq!(d.graph_interference(), 0, "both survivors lost their only link");
        let s = d.export_state();
        let r = DynamicInterference::from_state(s).expect("physical state restores");
        assert!(r.is_physical());
        assert_eq!(r.live_count(), 2);
    }

    #[test]
    fn empty_structure() {
        let d = DynamicInterference::new(NodeSet::new(vec![]));
        assert!(d.is_empty());
        assert_eq!(d.graph_interference(), 0);
    }

    /// Hand-written physical-mode oracle: `v` is covered by `u` iff `u`
    /// has a neighbor and `dist(u,v) <= ρ_u`, with `ρ_u` the *pinned*
    /// radius (never link-derived).
    fn check_physical_consistent(d: &DynamicInterference, radii: &[f64]) {
        let t = d.as_topology();
        let n = d.len();
        let mut want = vec![0usize; n];
        for u in 0..n {
            if d.graph().degree(u) == 0 {
                continue;
            }
            for v in 0..n {
                if v != u && t.nodes().pos(u).dist(&t.nodes().pos(v)) <= radii[u] {
                    want[v] += 1;
                }
            }
        }
        let got: Vec<usize> = (0..n).map(|v| d.interference_at(v)).collect();
        assert_eq!(got, want, "physical dynamic counts diverged from the oracle");
        assert_eq!(d.graph_interference(), want.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn physical_mode_pins_radii_across_edits() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.5, 0.9]);
        let radii = [0.6, 0.1, 0.45, 0.3];
        let mut d = DynamicInterference::new_physical(ns, &radii);
        assert!(d.is_physical());
        check_physical_consistent(&d, &radii);
        assert!(d.insert_edge(0, 3)); // both gates open; radii stay pinned
        check_physical_consistent(&d, &radii);
        // rim-lint: allow(float-eq) — pinned radius must be bit-identical
        assert!(d.radius(0) == 0.6, "edge insertion must not move a pinned radius");
        assert!(d.insert_edge(1, 2));
        check_physical_consistent(&d, &radii);
        assert!(d.remove_edge(0, 3)); // gates close again
        check_physical_consistent(&d, &radii);
        assert!(d.remove_edge(1, 2));
        check_physical_consistent(&d, &radii);
        assert_eq!(d.graph_interference(), 0);
    }

    #[test]
    fn from_physical_matches_the_batch_coverage_kernel() {
        let t = Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
            &[(0, 1), (1, 2), (2, 3)],
        );
        let m = crate::physical::PhysModel::disk_equivalent(&t);
        let mut d = DynamicInterference::from_physical(&t, &m);
        let want = crate::physical::coverage_vector_naive(&m);
        let got: Vec<usize> = (0..d.len()).map(|v| d.interference_at(v)).collect();
        assert_eq!(got, want, "from_physical must reproduce the batch kernel");
        // Edits keep agreeing with the hand oracle.
        let radii: Vec<f64> = (0..m.len()).map(|u| m.coverage_radius(u)).collect();
        d.remove_edge(1, 2);
        check_physical_consistent(&d, &radii);
        d.insert_edge(0, 2);
        check_physical_consistent(&d, &radii);
    }

    #[test]
    fn physical_node_arrival_carries_its_radius() {
        let ns = NodeSet::on_line(&[0.0, 0.3]);
        let mut d = DynamicInterference::new_physical(ns, &[0.4, 0.4]);
        d.insert_edge(0, 1);
        let v = d.insert_node_with_radius(Point::on_line(0.35), 2.0);
        assert_eq!(d.interference_at(v), 2, "lands inside both pinned disks");
        check_physical_consistent(&d, &[0.4, 0.4, 2.0]);
        // Its first edge opens a disk of the pinned radius 2.0, not the
        // link length.
        d.insert_edge(v, 0);
        check_physical_consistent(&d, &[0.4, 0.4, 2.0]);
        assert_eq!(d.interference_at(1), 2, "the newcomer's big disk reaches node 1");
    }
}
