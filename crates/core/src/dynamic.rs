//! Incrementally maintained interference under link insertions/removals.
//!
//! Topology-control algorithms (and dynamic networks) repeatedly tweak an
//! edge set and re-ask for `I(G')`. Recomputing from scratch is `O(n²)`
//! per query; [`DynamicInterference`] maintains the per-node coverage
//! counts across updates:
//!
//! * a node covers `v` iff it has at least one neighbor and
//!   `|uv| <= r_u` — the same rule as the batch kernels;
//! * an edge update changes at most the two endpoints' radii (and whether
//!   they transmit at all), so only their coverage needs patching.
//!
//! Each update costs `O(n)` in the worst case (rescanning per endpoint) but
//! touches only the affected nodes; the query is `O(1)` per node. The
//! equivalence with the batch [`crate::receiver`] kernels is
//! property-tested.

use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// Interference counts maintained across edge updates.
#[derive(Debug, Clone)]
pub struct DynamicInterference {
    nodes: NodeSet,
    graph: AdjacencyList,
    radii: Vec<f64>,
    cov: Vec<u32>,
    /// Whether each node was transmitting (degree > 0) at the last
    /// coverage update — needed to patch coverage when a node's degree
    /// crosses zero without its radius changing (zero-length links).
    graph_deg_snapshot: Vec<bool>,
}

impl DynamicInterference {
    /// Starts from the empty topology over `nodes`.
    pub fn new(nodes: NodeSet) -> Self {
        let n = nodes.len();
        DynamicInterference {
            nodes,
            graph: AdjacencyList::new(n),
            radii: vec![0.0; n],
            cov: vec![0; n],
            graph_deg_snapshot: vec![false; n],
        }
    }

    /// Starts from an existing topology.
    pub fn from_topology(t: &Topology) -> Self {
        let mut d = DynamicInterference::new(t.nodes().clone());
        for e in t.edges() {
            d.insert_edge(e.u, e.v);
        }
        d
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` for the empty node set.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current interference of `v`.
    pub fn interference_at(&self, v: usize) -> usize {
        self.cov[v] as usize
    }

    /// Current graph interference `I(G')`.
    pub fn graph_interference(&self) -> usize {
        self.cov.iter().copied().max().unwrap_or(0) as usize
    }

    /// Current radius of `u`.
    pub fn radius(&self, u: usize) -> f64 {
        self.radii[u]
    }

    /// The maintained edge structure.
    pub fn graph(&self) -> &AdjacencyList {
        &self.graph
    }

    /// Materializes the current state as a [`Topology`].
    pub fn as_topology(&self) -> Topology {
        Topology::from_graph(self.nodes.clone(), self.graph.clone())
    }

    /// Inserts `{u, v}`; returns `false` if the edge already existed.
    pub fn insert_edge(&mut self, u: usize, v: usize) -> bool {
        let d = self.nodes.dist(u, v);
        if !self.graph.add_edge(u, v, d) {
            return false;
        }
        self.set_radius(u, self.radii[u].max(d));
        self.set_radius(v, self.radii[v].max(d));
        true
    }

    /// Removes `{u, v}`; returns `false` if the edge was absent.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if !self.graph.remove_edge(u, v) {
            return false;
        }
        let ru = self.graph.max_incident_weight(u).unwrap_or(0.0);
        let rv = self.graph.max_incident_weight(v).unwrap_or(0.0);
        self.set_radius(u, ru);
        self.set_radius(v, rv);
        true
    }

    /// Adjusts `u`'s radius and patches the coverage counts.
    ///
    /// Coverage is `deg(u) > 0 && d <= r_u` (a node transmits iff it has a
    /// neighbor — matching the batch kernels, including the coincident-node
    /// case where a zero-length link gives `r_u = 0` but still covers its
    /// endpoint). Comparing covered-before vs covered-after per node is
    /// immune to boundary subtleties at `d = 0`.
    fn set_radius(&mut self, u: usize, new_r: f64) {
        let old_r = self.radii[u];
        let was_tx = self.graph_deg_snapshot[u];
        let is_tx = self.graph.degree(u) > 0;
        self.graph_deg_snapshot[u] = is_tx;
        // rim-lint: allow(float-eq) — exact no-op check: radii are dist() copies
        if new_r == old_r && was_tx == is_tx {
            return;
        }
        self.radii[u] = new_r;
        let pu = self.nodes.pos(u);
        for w in 0..self.nodes.len() {
            if w == u {
                continue;
            }
            let d = pu.dist(&self.nodes.pos(w));
            let before = was_tx && d <= old_r;
            let after = is_tx && d <= new_r;
            match (before, after) {
                (false, true) => self.cov[w] += 1,
                (true, false) => self.cov[w] -= 1,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::interference_vector;
    use rim_geom::Point;

    fn check_consistent(d: &DynamicInterference) {
        let t = d.as_topology();
        let want = interference_vector(&t);
        let got: Vec<usize> = (0..d.len()).map(|v| d.interference_at(v)).collect();
        assert_eq!(got, want, "dynamic counts diverged from batch kernel");
    }

    #[test]
    fn insert_then_remove_roundtrips() {
        let ns = NodeSet::on_line(&[0.0, 0.2, 0.5, 0.9]);
        let mut d = DynamicInterference::new(ns);
        assert!(d.insert_edge(0, 1));
        check_consistent(&d);
        assert!(d.insert_edge(1, 3));
        check_consistent(&d);
        assert!(d.insert_edge(2, 3));
        check_consistent(&d);
        assert!(!d.insert_edge(0, 1), "duplicate");
        assert!(d.remove_edge(1, 3));
        check_consistent(&d);
        assert!(!d.remove_edge(1, 3), "already gone");
        assert!(d.remove_edge(0, 1));
        assert!(d.remove_edge(2, 3));
        check_consistent(&d);
        assert_eq!(d.graph_interference(), 0);
    }

    #[test]
    fn matches_from_topology_constructor() {
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.4, 0.3),
            Point::new(0.9, 0.1),
            Point::new(0.5, 0.8),
        ]);
        let t = Topology::from_pairs(ns, &[(0, 1), (1, 2), (1, 3)]);
        let d = DynamicInterference::from_topology(&t);
        check_consistent(&d);
        assert_eq!(d.graph_interference(), crate::receiver::graph_interference(&t));
    }

    #[test]
    fn random_update_sequences_stay_consistent() {
        let mut state = 5u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        let n = 9;
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 3) as f64 * 0.4 + (rnd() % 100) as f64 * 0.001, (i / 3) as f64 * 0.4))
            .collect();
        let mut d = DynamicInterference::new(NodeSet::new(pts));
        for step in 0..200 {
            let (a, b) = (rnd() % n, rnd() % n);
            if a == b {
                continue;
            }
            if d.graph().has_edge(a, b) {
                d.remove_edge(a, b);
            } else {
                d.insert_edge(a, b);
            }
            if step % 10 == 0 {
                check_consistent(&d);
            }
        }
        check_consistent(&d);
    }

    #[test]
    fn coincident_nodes_stay_consistent() {
        // Zero-length links: radius stays 0 but the endpoints transmit.
        let ns = NodeSet::new(vec![Point::ORIGIN, Point::ORIGIN, Point::new(0.5, 0.0)]);
        let mut d = DynamicInterference::new(ns);
        assert!(d.insert_edge(0, 1));
        check_consistent(&d); // 0 and 1 cover each other at d = 0
        assert!(d.insert_edge(0, 2));
        check_consistent(&d);
        assert!(d.remove_edge(0, 2)); // radius shrinks back to 0, still transmitting
        check_consistent(&d);
        assert!(d.remove_edge(0, 1)); // now silent again
        check_consistent(&d);
        assert_eq!(d.graph_interference(), 0);
    }

    #[test]
    fn empty_structure() {
        let d = DynamicInterference::new(NodeSet::new(vec![]));
        assert!(d.is_empty());
        assert_eq!(d.graph_interference(), 0);
    }
}
