//! Interference summaries and sanity bounds for experiment reporting.

use crate::receiver::{interference_vector, interference_vector_with, Engine};
use rim_graph::AdjacencyList;
use rim_udg::Topology;

/// Summary statistics of a topology's interference distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceSummary {
    /// Per-node interference `I(v)`.
    pub per_node: Vec<usize>,
    /// `I(G') = max_v I(v)`.
    pub max: usize,
    /// Mean node interference.
    pub mean: f64,
    /// `histogram[i]` = number of nodes with `I(v) = i`.
    pub histogram: Vec<usize>,
}

impl InterferenceSummary {
    /// Computes the summary for a topology with automatic engine
    /// selection ([`Engine::Auto`]).
    pub fn of(t: &Topology) -> Self {
        Self::with_engine(t, Engine::Auto)
    }

    /// Computes the summary through an explicitly chosen interference
    /// [`Engine`] — the hook the CLI's `--engine` flag uses. All engines
    /// produce identical summaries; see [`crate::receiver`].
    pub fn with_engine(t: &Topology, engine: Engine) -> Self {
        let per_node = interference_vector_with(t, engine);
        let max = per_node.iter().copied().max().unwrap_or(0);
        let mean = if per_node.is_empty() {
            0.0
        } else {
            per_node.iter().sum::<usize>() as f64 / per_node.len() as f64
        };
        let mut histogram = vec![0usize; max + 1];
        for &i in &per_node {
            histogram[i] += 1;
        }
        InterferenceSummary {
            per_node,
            max,
            mean,
            histogram,
        }
    }

    /// Index of a node attaining the maximum interference (`None` for
    /// empty topologies).
    pub fn argmax(&self) -> Option<usize> {
        (0..self.per_node.len()).max_by_key(|&v| (self.per_node[v], usize::MAX - v))
    }
}

/// Checks the structural sandwich of Section 3: for every node,
/// `deg_topology(v) <= I(v)`, and `I(v) <= Δ(UDG)` (each node is covered
/// at least by its topology neighbors, and at most by its UDG neighbors).
///
/// Returns the first violating node, or `None` if the bounds hold —
/// they always must; a violation indicates an implementation bug.
pub fn check_interference_bounds(t: &Topology, udg: &AdjacencyList) -> Option<usize> {
    let iv = interference_vector(t);
    let delta = udg.max_degree();
    (0..t.num_nodes()).find(|&v| iv[v] < t.graph().degree(v) || iv[v] > delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::udg::unit_disk_graph;
    use rim_udg::NodeSet;

    fn chain() -> Topology {
        Topology::from_pairs(NodeSet::on_line(&[0.0, 0.2, 0.4, 0.6]), &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn summary_statistics() {
        let s = InterferenceSummary::of(&chain());
        assert_eq!(s.per_node.len(), 4);
        assert_eq!(s.max, *s.per_node.iter().max().unwrap());
        let total: usize = s.histogram.iter().sum();
        assert_eq!(total, 4);
        assert!((s.mean - s.per_node.iter().sum::<usize>() as f64 / 4.0).abs() < 1e-12);
        let am = s.argmax().unwrap();
        assert_eq!(s.per_node[am], s.max);
    }

    #[test]
    fn all_engines_summarize_identically() {
        let t = chain();
        let auto = InterferenceSummary::of(&t);
        for e in Engine::ALL {
            assert_eq!(InterferenceSummary::with_engine(&t, e), auto, "{}", e.name());
        }
    }

    #[test]
    fn empty_summary() {
        let s = InterferenceSummary::of(&Topology::empty(NodeSet::new(vec![])));
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.argmax(), None);
        assert_eq!(s.histogram, vec![0]);
    }

    #[test]
    fn bounds_hold_on_chain() {
        let t = chain();
        let udg = unit_disk_graph(t.nodes());
        assert_eq!(check_interference_bounds(&t, &udg), None);
    }

    #[test]
    fn argmax_prefers_smallest_index_on_ties() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.5]), &[(0, 1)]);
        let s = InterferenceSummary::of(&t);
        assert_eq!(s.argmax(), Some(0)); // both nodes have I = 1
    }
}
