//! The receiver-centric interference measure (Definitions 3.1 and 3.2).
//!
//! Three batch kernels compute the same counts:
//!
//! * [`interference_vector_naive`] — the `O(n²)` all-pairs reference.
//!   This is the **permanent oracle**: it transcribes Definition 3.1
//!   literally and every faster kernel is differential-tested against it.
//! * [`Engine::Indexed`] — one closed-disk range query per transmitter
//!   over a [`SpatialIndex`] (grid, or kd-tree for degenerate spreads).
//! * [`Engine::Parallel`] — the indexed scatter split across scoped
//!   threads with per-thread accumulators.
//!
//! All three evaluate the identical predicate `deg(u) > 0 && dist(u,v)
//! <= r_u` at distance level, so they agree *exactly* — not
//! approximately — on every input; [`Engine::Auto`] may therefore pick
//! by size alone.
//!
//! [`Engine::Streaming`] routes through the structure-of-arrays kernel
//! of [`crate::stream`] — the same counts computed without the edge
//! list, sized for 10⁶–10⁷-node instances.
//!
//! Two further engines route through the physical-layer (SINR) model of
//! `rim-phys` in its disk-equivalent instantiation:
//! [`Engine::PhysicalNaive`] and [`Engine::PhysicalIndexed`] compute the
//! same counts via transmit powers and log-distance path loss, and the
//! disk-limit theorem (`DESIGN.md` §11) makes them agree bit-for-bit
//! with the disk kernels — a differential-tested contract.

use crate::parallel::{num_threads, par_scatter_u32};
use rim_geom::SpatialIndex;
use rim_udg::Topology;

/// Below this node count the all-pairs scan beats any index build.
const AUTO_INDEXED_MIN: usize = 64;
/// From this node count on, threads amortize their spawn cost.
const AUTO_PARALLEL_MIN: usize = 8192;
/// Target number of senders per parallel chunk.
const PARALLEL_CHUNK: usize = 1024;

/// Strategy selector for the batch interference kernels.
///
/// Every engine computes bit-identical results (a property-tested
/// invariant); they differ only in running time. Parse one from a CLI
/// string with [`str::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// All-pairs `O(n²)` scan — the oracle every other engine must match.
    Naive,
    /// Spatial-index scatter: one disk query per transmitter.
    Indexed,
    /// Indexed scatter split across `std::thread::scope` workers.
    Parallel,
    /// Disk-equivalent physical (SINR) model, all-pairs coverage scan —
    /// exercises the `rim-phys` path-loss pipeline end to end while the
    /// disk-limit theorem keeps the counts bit-identical to [`Engine::Naive`].
    PhysicalNaive,
    /// Disk-equivalent physical model with one coverage-disk query per
    /// transmitter over the shared [`SpatialIndex`].
    PhysicalIndexed,
    /// Structure-of-arrays streaming kernel ([`crate::stream`]): the
    /// topology's radii are carried into a bucket-permuted SoA grid and
    /// scattered without touching the edge list — the 10⁶–10⁷-node path.
    Streaming,
    /// Pick by instance size: naive below 64 nodes, indexed above,
    /// parallel from 8192 nodes when more than one core is available.
    #[default]
    Auto,
}

impl Engine {
    /// All selectable engines, in oracle-first order (useful for tests
    /// and help text).
    pub const ALL: [Engine; 7] = [
        Engine::Naive,
        Engine::Indexed,
        Engine::Parallel,
        Engine::PhysicalNaive,
        Engine::PhysicalIndexed,
        Engine::Streaming,
        Engine::Auto,
    ];

    /// The CLI-facing name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Naive => "naive",
            Engine::Indexed => "indexed",
            Engine::Parallel => "parallel",
            Engine::PhysicalNaive => "physical-naive",
            Engine::PhysicalIndexed => "physical-indexed",
            Engine::Streaming => "streaming",
            Engine::Auto => "auto",
        }
    }

    /// Resolves `Auto` to the concrete engine for an instance of `n` nodes.
    fn resolve(self, n: usize) -> Engine {
        match self {
            Engine::Auto => {
                if n < AUTO_INDEXED_MIN {
                    Engine::Naive
                } else if n >= AUTO_PARALLEL_MIN && num_threads() > 1 {
                    Engine::Parallel
                } else {
                    Engine::Indexed
                }
            }
            e => e,
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Engine, String> {
        match s {
            "naive" => Ok(Engine::Naive),
            "indexed" => Ok(Engine::Indexed),
            "parallel" => Ok(Engine::Parallel),
            "physical-naive" => Ok(Engine::PhysicalNaive),
            "physical-indexed" => Ok(Engine::PhysicalIndexed),
            "streaming" => Ok(Engine::Streaming),
            "auto" => Ok(Engine::Auto),
            other => Err(format!(
                "unknown engine `{other}` (expected naive|indexed|parallel|physical-naive|physical-indexed|streaming|auto)"
            )),
        }
    }
}

/// Interference experienced by node `v` (Definition 3.1): the number of
/// *other* nodes `u` whose disk `D(u, r_u)` covers `v`. Self-interference
/// is excluded, as in the paper.
///
/// Runs in `O(n)`; use [`interference_vector`] when all nodes are needed.
pub fn interference_at(t: &Topology, v: usize) -> usize {
    let nodes = t.nodes();
    let pv = nodes.pos(v);
    let mut count = 0;
    for u in 0..nodes.len() {
        // A node transmits iff it has at least one neighbor; its radius
        // alone cannot decide that (a zero-length link between coincident
        // nodes has r = 0 yet carries traffic).
        if u == v || t.graph().degree(u) == 0 {
            continue;
        }
        // Distance-level comparison: r_u is itself a dist() result, so the
        // farthest neighbor compares equal (squaring would break that).
        if nodes.pos(u).dist(&pv) <= t.radius(u) {
            count += 1;
        }
    }
    count
}

/// Per-node interference of the whole topology, reference `O(n²)`
/// implementation: `out[v] = I(v)`.
pub fn interference_vector_naive(t: &Topology) -> Vec<usize> {
    let n = t.num_nodes();
    let nodes = t.nodes();
    let mut out = vec![0usize; n];
    for u in 0..n {
        if t.graph().degree(u) == 0 {
            continue; // isolated nodes transmit nothing
        }
        let r = t.radius(u);
        let pu = nodes.pos(u);
        for (v, iv) in out.iter_mut().enumerate() {
            if v != u && pu.dist(&nodes.pos(v)) <= r {
                *iv += 1;
            }
        }
    }
    out
}

/// Builds the spatial index the batch kernels scatter over: the median
/// positive radius makes a good cell hint (it balances bucket population
/// against buckets touched per query), and [`SpatialIndex::build`] falls
/// back to a kd-tree when the spread defeats any uniform cell. Public so
/// other layers computing coverage relations (e.g. the simulator's PHY
/// tables) share the same heuristic.
// rim-lint: allow(panic-freedom) — the median index is guarded by the is_empty branch
pub fn build_index(t: &Topology) -> SpatialIndex {
    let _span = rim_obs::span("interference/index_build");
    let mut radii: Vec<f64> = t.radii().iter().copied().filter(|&r| r > 0.0).collect();
    let hint = if radii.is_empty() {
        1.0 // edgeless: nobody transmits, any index shape works
    } else {
        radii.sort_unstable_by(f64::total_cmp);
        radii[radii.len() / 2]
    };
    SpatialIndex::build(t.nodes().points(), hint)
}

/// Scatters sender `u`'s coverage contribution into `out` via `index`,
/// returning the number of disk queries issued (0 for silent nodes, 1
/// for transmitters) so the kernels can report query totals in one
/// counter update per batch. Accumulators are `u32`: interference is
/// bounded by `n - 1`, and the grids refuse more than `u32::MAX` points,
/// so the counts cannot overflow — and halving the accumulator width
/// halves the cache traffic of the hot scatter loop.
#[inline]
fn scatter_sender(t: &Topology, index: &SpatialIndex, u: usize, out: &mut [u32]) -> u64 {
    if t.graph().degree(u) == 0 {
        return 0; // isolated nodes transmit nothing
    }
    index.for_each_in_disk(t.nodes().pos(u), t.radius(u), |v| {
        if v != u {
            out[v] += 1;
        }
    });
    1
}

/// Indexed kernel: one closed-disk range query per transmitter, expected
/// `O(n + Σ_u I-contribution(u))` for bounded densities. The range query
/// evaluates the same closed predicate at distance level (`dist(u,v) <=
/// r_u`, never on squares — `r_u` is itself a `dist()` result, and
/// squaring would break exact boundary ties), so the counts equal
/// [`interference_vector_naive`]'s exactly.
fn interference_vector_indexed(t: &Topology, index: &SpatialIndex) -> Vec<usize> {
    let n = t.num_nodes();
    let mut out = vec![0u32; n];
    let mut queries = 0u64;
    for u in 0..n {
        queries += scatter_sender(t, index, u, &mut out);
    }
    rim_obs::counter_add("core.disk_queries", queries);
    out.into_iter().map(|c| c as usize).collect()
}

/// Parallel kernel: the sender range `0..n` is sharded over
/// [`par_scatter_u32`] — every worker scatters into a private zeroed
/// `u32` buffer (no false sharing on a common output vector) and the
/// buffers are summed at the barrier. Integer addition commutes, so the
/// result is bit-identical to the indexed kernel for any thread count.
fn interference_vector_parallel(t: &Topology, index: &SpatialIndex) -> Vec<usize> {
    let n = t.num_nodes();
    let chunks = (n / PARALLEL_CHUNK).clamp(1, num_threads());
    let counts = par_scatter_u32(n, n, chunks, |range, buf| {
        let mut queries = 0u64;
        for u in range {
            queries += scatter_sender(t, index, u, buf);
        }
        // One counter update per chunk, not per query: the shared-sink
        // cost stays O(chunks) however large the instance.
        rim_obs::counter_add("core.disk_queries", queries);
    });
    counts.into_iter().map(|c| c as usize).collect()
}

/// Per-node interference via an explicitly chosen [`Engine`]:
/// `out[v] = I(v)`. All engines agree exactly; see the module docs.
pub fn interference_vector_with(t: &Topology, engine: Engine) -> Vec<usize> {
    let n = t.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let resolved = engine.resolve(n);
    let _span = rim_obs::span(match resolved {
        Engine::Naive => "interference/naive",
        Engine::Indexed => "interference/indexed",
        Engine::PhysicalNaive => "interference/physical_naive",
        Engine::PhysicalIndexed => "interference/physical_indexed",
        Engine::Streaming => "interference/streaming_engine",
        Engine::Parallel | Engine::Auto => "interference/parallel",
    });
    match resolved {
        Engine::Naive => interference_vector_naive(t),
        Engine::Indexed => interference_vector_indexed(t, &build_index(t)),
        Engine::PhysicalNaive => crate::physical::disk_limit_vector(t, false),
        Engine::PhysicalIndexed => crate::physical::disk_limit_vector(t, true),
        Engine::Streaming => crate::stream::StreamInstance::from_topology(t)
            .interference_counts_sharded(num_threads())
            .into_iter()
            .map(|c| c as usize)
            .collect(),
        Engine::Parallel | Engine::Auto => interference_vector_parallel(t, &build_index(t)),
    }
}

/// Per-node interference with automatic engine selection
/// ([`Engine::Auto`]) — the default entry point of the workspace.
pub fn interference_vector(t: &Topology) -> Vec<usize> {
    interference_vector_with(t, Engine::Auto)
}

/// Graph interference `I(G')` (Definition 3.2): the maximum node
/// interference; 0 for empty topologies.
///
/// ```
/// use rim_udg::{NodeSet, Topology};
/// use rim_core::receiver::graph_interference;
///
/// // A uniform three-hop chain: every node is covered only by its
/// // immediate neighbors.
/// let t = Topology::from_pairs(
///     NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
///     &[(0, 1), (1, 2), (2, 3)],
/// );
/// assert_eq!(graph_interference(&t), 2);
/// ```
pub fn graph_interference(t: &Topology) -> usize {
    interference_vector(t).into_iter().max().unwrap_or(0)
}

/// Graph interference `I(G')` via an explicitly chosen [`Engine`].
pub fn graph_interference_with(t: &Topology, engine: Engine) -> usize {
    interference_vector_with(t, engine).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;
    use rim_udg::NodeSet;

    /// The five-node example of Figure 2: node `u` is covered by its
    /// direct neighbor and by the distant node `v` whose radius reaches
    /// over it, so `I(u) = 2`.
    fn figure2() -> (Topology, usize, usize) {
        // Layout mirroring the figure's structure: node u has one direct
        // neighbor a; the distant node v is linked to b, and |vb| > |vu|,
        // so v's disk reaches over u even though {u, v} is not a link.
        // Node c is a's second neighbor, too close to cover u.
        let u = Point::new(0.0, 0.0);
        let a = Point::new(-0.2, 0.0);
        let v = Point::new(0.8, 0.0);
        let b = Point::new(1.3, 0.65); // |vb| ≈ 0.82 > |vu| = 0.8
        let c = Point::new(-0.15, 0.08);
        let ns = NodeSet::new(vec![u, a, v, b, c]);
        let t = Topology::from_pairs(ns, &[(0, 1), (2, 3), (1, 4)]);
        (t, 0, 2)
    }

    #[test]
    fn figure2_interference_at_u_is_two() {
        let (t, u, expect) = figure2();
        assert_eq!(interference_at(&t, u), expect);
    }

    #[test]
    fn naive_and_fast_agree_on_figure2() {
        let (t, _, _) = figure2();
        assert_eq!(interference_vector(&t), interference_vector_naive(&t));
    }

    #[test]
    fn empty_and_isolated() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.5, 1.0]));
        assert_eq!(interference_vector(&t), vec![0, 0, 0]);
        assert_eq!(graph_interference(&t), 0);
        let none = Topology::empty(NodeSet::new(vec![]));
        assert_eq!(graph_interference(&none), 0);
        assert_eq!(interference_vector(&none), Vec::<usize>::new());
    }

    #[test]
    fn single_link_interferes_both_endpoints() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.4]), &[(0, 1)]);
        assert_eq!(interference_vector(&t), vec![1, 1]);
        assert_eq!(graph_interference(&t), 1);
    }

    #[test]
    fn degree_lower_bounds_interference() {
        // A star: the center's degree equals its interference; leaves see
        // the center plus every other leaf whose radius reaches them.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(-0.5, 0.0),
            Point::new(0.0, 0.5),
        ]);
        let t = Topology::from_pairs(ns, &[(0, 1), (0, 2), (0, 3)]);
        let iv = interference_vector(&t);
        for v in 0..t.num_nodes() {
            assert!(iv[v] >= t.graph().degree(v), "deg <= I violated at {v}");
        }
    }

    #[test]
    fn coverage_by_non_neighbors_counts() {
        // Chain 0-1-2 with growing gaps: node 2's radius (to 1) reaches
        // node 0? positions 0, 0.3, 0.7: r_2 = 0.4, |2-0| = 0.7: no.
        // positions 0, 0.5, 0.6: r_2 = 0.1 no. Use 0, 0.45, 0.9:
        // r_2 = 0.45, |2-0| = 0.9 no. For coverage of 0 by 2 we need
        // r_2 >= 0.9 but r_2 = |2-1|. Take 1 close to 0: 0, 0.05, 1.0.
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.05, 1.0]), &[(0, 1), (1, 2)]);
        // r_0 = 0.05, r_1 = 0.95, r_2 = 0.95.
        // I(0): covered by 1 (0.05 <= 0.95) and by 2 (1.0 > 0.95)? no.
        assert_eq!(interference_at(&t, 0), 1);
        // I(1): covered by 0 (0.05<=0.05) and 2 (0.95<=0.95) = 2.
        assert_eq!(interference_at(&t, 1), 2);
        // I(2): covered by 1 only (0 has tiny radius).
        assert_eq!(interference_at(&t, 2), 1);
        assert_eq!(graph_interference(&t), 2);
    }

    #[test]
    fn coincident_nodes_with_zero_length_link() {
        // Two nodes at the same position, linked: r = 0 for both, yet
        // each transmits and covers the other (deg <= I must hold).
        // A third coincident node without links transmits nothing.
        let ns = NodeSet::new(vec![Point::ORIGIN, Point::ORIGIN, Point::ORIGIN]);
        let t = Topology::from_pairs(ns, &[(0, 1)]);
        let iv = interference_vector(&t);
        assert_eq!(iv, vec![1, 1, 2], "nodes 0/1 cover each other and node 2");
        assert_eq!(iv, interference_vector_naive(&t));
        for v in 0..3 {
            assert_eq!(interference_at(&t, v), iv[v], "per-node API must agree");
            assert!(iv[v] >= t.graph().degree(v), "deg <= I at {v}");
        }
    }

    #[test]
    fn fast_agrees_with_naive_on_extreme_radius_spread() {
        // Exponential chain: radii spread over many orders of magnitude —
        // the stress case for the grid cell-size heuristic.
        let scale = 2f64.powi(-20);
        let xs: Vec<f64> = (0..20).map(|i| (2f64.powi(i) - 1.0) * scale).collect();
        let ns = NodeSet::on_line(&xs);
        let pairs: Vec<(usize, usize)> = (1..20).map(|i| (i - 1, i)).collect();
        let t = Topology::from_pairs(ns, &pairs);
        assert_eq!(interference_vector(&t), interference_vector_naive(&t));
    }

    #[test]
    fn every_engine_agrees_on_figure2() {
        let (t, _, _) = figure2();
        let oracle = interference_vector_naive(&t);
        for e in Engine::ALL {
            assert_eq!(interference_vector_with(&t, e), oracle, "engine {}", e.name());
            assert_eq!(
                graph_interference_with(&t, e),
                oracle.iter().copied().max().unwrap_or(0),
                "engine {}",
                e.name()
            );
        }
    }

    #[test]
    fn parallel_splits_are_exercised_and_exact() {
        // Enough nodes that the parallel kernel actually spawns threads
        // (n / PARALLEL_CHUNK >= 2) on multi-core machines.
        let n = 2 * super::PARALLEL_CHUNK;
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 64) as f64 * 0.1, (i / 64) as f64 * 0.1))
            .collect();
        let pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        let t = Topology::from_pairs(NodeSet::new(pts), &pairs);
        let oracle = interference_vector_naive(&t);
        assert_eq!(interference_vector_with(&t, Engine::Parallel), oracle);
        assert_eq!(interference_vector_with(&t, Engine::Indexed), oracle);
    }

    #[test]
    fn engine_parses_from_cli_strings() {
        for e in Engine::ALL {
            assert_eq!(e.name().parse::<Engine>(), Ok(e));
        }
        assert!("grid".parse::<Engine>().is_err());
        assert_eq!(Engine::default(), Engine::Auto);
    }
}
