//! The receiver-centric interference measure (Definitions 3.1 and 3.2).

use rim_geom::UniformGrid;
use rim_udg::Topology;

/// Interference experienced by node `v` (Definition 3.1): the number of
/// *other* nodes `u` whose disk `D(u, r_u)` covers `v`. Self-interference
/// is excluded, as in the paper.
///
/// Runs in `O(n)`; use [`interference_vector`] when all nodes are needed.
pub fn interference_at(t: &Topology, v: usize) -> usize {
    let nodes = t.nodes();
    let pv = nodes.pos(v);
    let mut count = 0;
    for u in 0..nodes.len() {
        // A node transmits iff it has at least one neighbor; its radius
        // alone cannot decide that (a zero-length link between coincident
        // nodes has r = 0 yet carries traffic).
        if u == v || t.graph().degree(u) == 0 {
            continue;
        }
        // Distance-level comparison: r_u is itself a dist() result, so the
        // farthest neighbor compares equal (squaring would break that).
        if nodes.pos(u).dist(&pv) <= t.radius(u) {
            count += 1;
        }
    }
    count
}

/// Per-node interference of the whole topology, reference `O(n²)`
/// implementation: `out[v] = I(v)`.
pub fn interference_vector_naive(t: &Topology) -> Vec<usize> {
    let n = t.num_nodes();
    let nodes = t.nodes();
    let mut out = vec![0usize; n];
    for u in 0..n {
        if t.graph().degree(u) == 0 {
            continue; // isolated nodes transmit nothing
        }
        let r = t.radius(u);
        let pu = nodes.pos(u);
        for (v, iv) in out.iter_mut().enumerate() {
            if v != u && pu.dist(&nodes.pos(v)) <= r {
                *iv += 1;
            }
        }
    }
    out
}

/// Per-node interference, grid-accelerated.
///
/// For every sender `u` a disk range query of radius `r_u` collects the
/// covered nodes; expected time `O(n + Σ_u I-contribution(u))` for bounded
/// densities. Produces exactly the same counts as
/// [`interference_vector_naive`]: the range query evaluates the same
/// closed predicate at distance level (`dist(u,v) <= r_u`, never on
/// squares — `r_u` is itself a `dist()` result, and squaring would
/// break exact boundary ties) — a property-tested invariant.
pub fn interference_vector(t: &Topology) -> Vec<usize> {
    let n = t.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let nodes = t.nodes();
    // Cell size: the median positive radius balances bucket population
    // against the number of buckets a query touches; fall back to the
    // bounding-box diagonal for edgeless topologies.
    let mut radii: Vec<f64> = t.radii().iter().copied().filter(|&r| r > 0.0).collect();
    let cell = if radii.is_empty() {
        1.0
    } else {
        radii.sort_unstable_by(f64::total_cmp);
        radii[radii.len() / 2].max(1e-9)
    };
    let grid = UniformGrid::build(nodes.points(), cell);
    let mut out = vec![0usize; n];
    for u in 0..n {
        if t.graph().degree(u) == 0 {
            continue;
        }
        let r = t.radius(u);
        grid.for_each_in_disk(nodes.pos(u), r, |v| {
            if v != u {
                out[v] += 1;
            }
        });
    }
    out
}

/// Graph interference `I(G')` (Definition 3.2): the maximum node
/// interference; 0 for empty topologies.
///
/// ```
/// use rim_udg::{NodeSet, Topology};
/// use rim_core::receiver::graph_interference;
///
/// // A uniform three-hop chain: every node is covered only by its
/// // immediate neighbors.
/// let t = Topology::from_pairs(
///     NodeSet::on_line(&[0.0, 0.3, 0.6, 0.9]),
///     &[(0, 1), (1, 2), (2, 3)],
/// );
/// assert_eq!(graph_interference(&t), 2);
/// ```
pub fn graph_interference(t: &Topology) -> usize {
    interference_vector(t).into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_geom::Point;
    use rim_udg::NodeSet;

    /// The five-node example of Figure 2: node `u` is covered by its
    /// direct neighbor and by the distant node `v` whose radius reaches
    /// over it, so `I(u) = 2`.
    fn figure2() -> (Topology, usize, usize) {
        // Layout mirroring the figure's structure: node u has one direct
        // neighbor a; the distant node v is linked to b, and |vb| > |vu|,
        // so v's disk reaches over u even though {u, v} is not a link.
        // Node c is a's second neighbor, too close to cover u.
        let u = Point::new(0.0, 0.0);
        let a = Point::new(-0.2, 0.0);
        let v = Point::new(0.8, 0.0);
        let b = Point::new(1.3, 0.65); // |vb| ≈ 0.82 > |vu| = 0.8
        let c = Point::new(-0.15, 0.08);
        let ns = NodeSet::new(vec![u, a, v, b, c]);
        let t = Topology::from_pairs(ns, &[(0, 1), (2, 3), (1, 4)]);
        (t, 0, 2)
    }

    #[test]
    fn figure2_interference_at_u_is_two() {
        let (t, u, expect) = figure2();
        assert_eq!(interference_at(&t, u), expect);
    }

    #[test]
    fn naive_and_fast_agree_on_figure2() {
        let (t, _, _) = figure2();
        assert_eq!(interference_vector(&t), interference_vector_naive(&t));
    }

    #[test]
    fn empty_and_isolated() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.5, 1.0]));
        assert_eq!(interference_vector(&t), vec![0, 0, 0]);
        assert_eq!(graph_interference(&t), 0);
        let none = Topology::empty(NodeSet::new(vec![]));
        assert_eq!(graph_interference(&none), 0);
        assert_eq!(interference_vector(&none), Vec::<usize>::new());
    }

    #[test]
    fn single_link_interferes_both_endpoints() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.4]), &[(0, 1)]);
        assert_eq!(interference_vector(&t), vec![1, 1]);
        assert_eq!(graph_interference(&t), 1);
    }

    #[test]
    fn degree_lower_bounds_interference() {
        // A star: the center's degree equals its interference; leaves see
        // the center plus every other leaf whose radius reaches them.
        let ns = NodeSet::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(-0.5, 0.0),
            Point::new(0.0, 0.5),
        ]);
        let t = Topology::from_pairs(ns, &[(0, 1), (0, 2), (0, 3)]);
        let iv = interference_vector(&t);
        for v in 0..t.num_nodes() {
            assert!(iv[v] >= t.graph().degree(v), "deg <= I violated at {v}");
        }
    }

    #[test]
    fn coverage_by_non_neighbors_counts() {
        // Chain 0-1-2 with growing gaps: node 2's radius (to 1) reaches
        // node 0? positions 0, 0.3, 0.7: r_2 = 0.4, |2-0| = 0.7: no.
        // positions 0, 0.5, 0.6: r_2 = 0.1 no. Use 0, 0.45, 0.9:
        // r_2 = 0.45, |2-0| = 0.9 no. For coverage of 0 by 2 we need
        // r_2 >= 0.9 but r_2 = |2-1|. Take 1 close to 0: 0, 0.05, 1.0.
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.05, 1.0]), &[(0, 1), (1, 2)]);
        // r_0 = 0.05, r_1 = 0.95, r_2 = 0.95.
        // I(0): covered by 1 (0.05 <= 0.95) and by 2 (1.0 > 0.95)? no.
        assert_eq!(interference_at(&t, 0), 1);
        // I(1): covered by 0 (0.05<=0.05) and 2 (0.95<=0.95) = 2.
        assert_eq!(interference_at(&t, 1), 2);
        // I(2): covered by 1 only (0 has tiny radius).
        assert_eq!(interference_at(&t, 2), 1);
        assert_eq!(graph_interference(&t), 2);
    }

    #[test]
    fn coincident_nodes_with_zero_length_link() {
        // Two nodes at the same position, linked: r = 0 for both, yet
        // each transmits and covers the other (deg <= I must hold).
        // A third coincident node without links transmits nothing.
        let ns = NodeSet::new(vec![Point::ORIGIN, Point::ORIGIN, Point::ORIGIN]);
        let t = Topology::from_pairs(ns, &[(0, 1)]);
        let iv = interference_vector(&t);
        assert_eq!(iv, vec![1, 1, 2], "nodes 0/1 cover each other and node 2");
        assert_eq!(iv, interference_vector_naive(&t));
        for v in 0..3 {
            assert_eq!(interference_at(&t, v), iv[v], "per-node API must agree");
            assert!(iv[v] >= t.graph().degree(v), "deg <= I at {v}");
        }
    }

    #[test]
    fn fast_agrees_with_naive_on_extreme_radius_spread() {
        // Exponential chain: radii spread over many orders of magnitude —
        // the stress case for the grid cell-size heuristic.
        let scale = 2f64.powi(-20);
        let xs: Vec<f64> = (0..20).map(|i| (2f64.powi(i) - 1.0) * scale).collect();
        let ns = NodeSet::on_line(&xs);
        let pairs: Vec<(usize, usize)> = (1..20).map(|i| (i - 1, i)).collect();
        let t = Topology::from_pairs(ns, &pairs);
        assert_eq!(interference_vector(&t), interference_vector_naive(&t));
    }
}
