//! Data-gathering trees — the setting the interference model came from.
//!
//! The receiver-centric measure was first formulated for *data
//! gathering* in sensor networks (Fussen, Wattenhofer, Zollinger —
//! reference \[4\] of the paper): all nodes report to a sink over a
//! **directed** tree, each node transmitting only as far as its parent.
//! The paper then generalizes to undirected topologies; this module
//! keeps the directed origin available:
//!
//! * a node's radius is the distance to its **parent** (not its farthest
//!   tree neighbor), so directed interference is never larger than the
//!   undirected interference of the same tree;
//! * the sink transmits nothing (radius 0).

use rim_graph::shortest_path::dijkstra;
use rim_graph::mst::kruskal;
use rim_graph::AdjacencyList;
use rim_udg::{NodeSet, Topology};

/// A directed gathering tree: every node except the sink has a parent on
/// the way towards the sink.
#[derive(Debug, Clone)]
pub struct GatheringTree {
    nodes: NodeSet,
    /// `parent[v]`; `usize::MAX` for the sink and for nodes disconnected
    /// from it.
    parent: Vec<usize>,
    sink: usize,
}

impl GatheringTree {
    /// Builds a tree from explicit parent pointers. Panics if the
    /// pointers contain a cycle or point outside the node set.
    pub fn new(nodes: NodeSet, parent: Vec<usize>, sink: usize) -> Self {
        assert_eq!(nodes.len(), parent.len());
        assert!(sink < nodes.len());
        assert_eq!(parent[sink], usize::MAX, "sink must have no parent");
        // Cycle check: walking up from any node must terminate.
        for start in 0..nodes.len() {
            let mut cur = start;
            let mut steps = 0;
            while parent[cur] != usize::MAX {
                cur = parent[cur];
                assert!(cur < nodes.len(), "parent out of range");
                steps += 1;
                assert!(steps <= nodes.len(), "cycle in parent pointers");
            }
        }
        GatheringTree {
            nodes,
            parent,
            sink,
        }
    }

    /// Shortest-path (Dijkstra) gathering tree towards `sink`.
    pub fn shortest_path_tree(nodes: &NodeSet, udg: &AdjacencyList, sink: usize) -> Self {
        let sp = dijkstra(udg, sink);
        GatheringTree::new(nodes.clone(), sp.parent, sink)
    }

    /// Gathering tree obtained by rooting the Euclidean MST at `sink`.
    pub fn mst_tree(nodes: &NodeSet, udg: &AdjacencyList, sink: usize) -> Self {
        let forest = kruskal(nodes.len(), &udg.edges());
        let g = AdjacencyList::from_edges(nodes.len(), &forest);
        // BFS orientation towards the sink.
        let mut parent = vec![usize::MAX; nodes.len()];
        let mut seen = vec![false; nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[sink] = true;
        queue.push_back(sink);
        while let Some(u) = queue.pop_front() {
            for v in g.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        GatheringTree::new(nodes.clone(), parent, sink)
    }

    /// The sink node.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Parent of `v` (`usize::MAX` for the sink / unreachable nodes).
    // rim-lint: allow(panic-freedom) — node ids are caller-validated against the tree
    pub fn parent(&self, v: usize) -> usize {
        self.parent[v]
    }

    /// The node positions.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// Directed transmission radius of `v`: the distance to its parent
    /// (0 for the sink and unreachable nodes).
    // rim-lint: allow(panic-freedom) — node ids are caller-validated; parents index the same node set
    pub fn radius(&self, v: usize) -> f64 {
        match self.parent[v] {
            usize::MAX => 0.0,
            p => self.nodes.dist(v, p),
        }
    }

    /// Number of nodes that actually reach the sink (including it).
    pub fn gathered(&self) -> usize {
        (0..self.nodes.len())
            .filter(|&v| v == self.sink || self.parent[v] != usize::MAX)
            .count()
    }

    /// Hop depth of `v` (0 for the sink; `None` if unreachable).
    pub fn depth(&self, v: usize) -> Option<usize> {
        let mut cur = v;
        let mut d = 0;
        while cur != self.sink {
            if self.parent[cur] == usize::MAX {
                return None;
            }
            cur = self.parent[cur];
            d += 1;
        }
        Some(d)
    }

    /// Directed receiver-centric interference: how many *other* senders'
    /// parent-directed disks cover `v`.
    pub fn interference_vector(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut out = vec![0usize; n];
        for u in 0..n {
            if self.parent[u] == usize::MAX {
                continue; // the sink (and unreachable nodes) transmit nothing
            }
            let r = self.radius(u);
            let pu = self.nodes.pos(u);
            for (v, iv) in out.iter_mut().enumerate() {
                if v != u && pu.dist(&self.nodes.pos(v)) <= r {
                    *iv += 1;
                }
            }
        }
        out
    }

    /// Directed graph interference (maximum over nodes).
    pub fn interference(&self) -> usize {
        self.interference_vector().into_iter().max().unwrap_or(0)
    }

    /// The undirected topology carrying the same tree edges (for
    /// comparisons with the paper's symmetric model).
    pub fn as_undirected(&self) -> Topology {
        let mut pairs = Vec::new();
        for v in 0..self.nodes.len() {
            if self.parent[v] != usize::MAX {
                pairs.push((v, self.parent[v]));
            }
        }
        Topology::from_pairs(self.nodes.clone(), &pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::graph_interference;
    use rim_udg::udg::unit_disk_graph;

    fn line() -> (NodeSet, AdjacencyList) {
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.8, 1.2, 1.6]);
        let udg = unit_disk_graph(&ns);
        (ns, udg)
    }

    #[test]
    fn spt_points_towards_the_sink() {
        let (ns, udg) = line();
        let t = GatheringTree::shortest_path_tree(&ns, &udg, 0);
        assert_eq!(t.parent(0), usize::MAX);
        // On a line distances are additive, so the SPT takes the longest
        // in-range hop towards the sink: every parent is strictly closer
        // to (and on the sink side of) the child.
        for v in 1..5 {
            let p = t.parent(v);
            assert!(p < v, "parent of {v} must lie towards the sink");
            assert!(t.depth(v).unwrap() >= 1);
        }
        // Node 2 is in direct range of the sink (0.8 <= 1).
        assert_eq!(t.parent(2), 0);
        assert_eq!(t.gathered(), 5);
    }

    #[test]
    fn directed_interference_never_exceeds_undirected() {
        let (ns, udg) = line();
        for sink in 0..5 {
            let t = GatheringTree::shortest_path_tree(&ns, &udg, sink);
            let directed = t.interference();
            let undirected = graph_interference(&t.as_undirected());
            assert!(directed <= undirected, "sink={sink}");
        }
    }

    #[test]
    fn mst_tree_follows_consecutive_links() {
        // The Euclidean MST of a line is the consecutive chain, so the
        // rooted gathering tree walks hop by hop — unlike the SPT, which
        // takes the longest in-range hops.
        let (ns, udg) = line();
        let t = GatheringTree::mst_tree(&ns, &udg, 2);
        assert_eq!(t.parent(0), 1);
        assert_eq!(t.parent(1), 2);
        assert_eq!(t.parent(2), usize::MAX);
        assert_eq!(t.parent(3), 2);
        assert_eq!(t.parent(4), 3);
        // The MST tree's radii are the link lengths — never longer than
        // the SPT's long hops, so its interference is no larger here.
        let spt = GatheringTree::shortest_path_tree(&ns, &udg, 2);
        assert!(t.interference() <= spt.interference());
    }

    #[test]
    fn unreachable_nodes_are_counted_out() {
        let ns = NodeSet::on_line(&[0.0, 0.4, 5.0]);
        let udg = unit_disk_graph(&ns);
        let t = GatheringTree::shortest_path_tree(&ns, &udg, 0);
        assert_eq!(t.gathered(), 2);
        assert_eq!(t.depth(2), None);
        assert_eq!(t.radius(2), 0.0);
    }

    #[test]
    #[should_panic]
    fn cycles_are_rejected() {
        let ns = NodeSet::on_line(&[0.0, 0.1, 0.2]);
        // 1 -> 2 -> 1 cycle.
        GatheringTree::new(ns, vec![usize::MAX, 2, 1], 0);
    }

    #[test]
    fn sink_never_interferes() {
        let (ns, udg) = line();
        let t = GatheringTree::shortest_path_tree(&ns, &udg, 2);
        // The sink has radius 0; removing it from every coverer list.
        let iv = t.interference_vector();
        // Node 2 is the sink: its neighbors' interference counts exclude
        // any contribution from node 2 itself.
        assert_eq!(t.radius(2), 0.0);
        assert!(iv.iter().all(|&x| x < ns.len()));
    }
}
