//! Streaming million-node interference kernel (UDG-free, SoA layout).
//!
//! Every batch engine in [`crate::receiver`] starts from a [`Topology`]:
//! the full adjacency structure with per-node `Vec`s of neighbors. At
//! 10⁶–10⁷ uniform nodes that edge list is the memory wall — the UDG on
//! a constant-density instance has Θ(n) edges with heavy constants, and
//! building it is itself `O(n²)` in the naive form. But receiver-centric
//! interference (Definition 3.1) never needs the edges: it needs each
//! node's **position** and **radius**, nothing else. [`StreamInstance`]
//! exploits that — it holds a structure-of-arrays point store
//! ([`SoaPoints`]), a bucket-permuted grid ([`SoaGrid`]), and one flat
//! radius column aligned with the grid's bucket order, and computes
//! `I(v)` for all `v` by scattering one closed-disk query per
//! transmitter into a flat `u32` count buffer. No per-node allocation,
//! no edge list, no `Vec<Vec<…>>` anywhere in the hot path.
//!
//! Radii come from either source:
//!
//! * [`StreamInstance::from_topology`] copies an existing topology's
//!   radius assignment (silent nodes, `deg = 0`, are marked and skipped
//!   exactly as the other engines skip them) — this is the path behind
//!   [`crate::receiver::Engine::Streaming`], and it is differential-
//!   tested to be **bit-identical** to the indexed engine.
//! * [`StreamInstance::with_nn_radii`] assigns every node its
//!   nearest-neighbor distance as radius, entirely from the index —
//!   the streaming analogue of the nearest-neighbor-forest radius
//!   assignment, and the instance family behind the Θ(√(log n))
//!   statistical gate (see [`sqrt_log_envelope`]).
//!
//! # The √(log n) statistical gate
//!
//! Differential oracles stop where `O(n²)` stops being runnable. Above
//! that, theory takes over: Devroye–Morin (arXiv 1202.5945) prove that
//! for n uniform-random points, the maximum receiver-centric
//! interference of nearest-neighbor-style radius assignments is
//! Θ(√(log n)) w.h.p. — the lower bound holds for *any* graph that
//! links every node to its nearest neighbor, and the NN-radius
//! assignment is pointwise ≤ the MST-radius assignment the upper bound
//! covers. [`sqrt_log_envelope`] pins the empirical constants; the
//! `interference_kernel` bench asserts max I(v) lands inside the
//! envelope across seeds at 10⁵–10⁷ nodes.

use crate::parallel::{num_threads, par_scatter_u32};
use rim_geom::{GridCapacityError, SoaGrid, SoaPoints};
use rim_udg::Topology;

/// Target number of senders per parallel chunk (matches the batch
/// engines' chunking heuristic).
const STREAM_CHUNK: usize = 1024;

/// Radius marker for nodes that transmit nothing (`deg = 0` in the
/// source topology). Negative radii cannot arise from distances, so the
/// kernel can test `r < 0.0` without a separate mask column.
const SILENT: f64 = -1.0;

/// A positions-plus-radii interference instance in streaming layout:
/// SoA coordinates, bucket-permuted grid, and a radius column aligned
/// with the grid's bucket order.
///
/// ```
/// use rim_core::stream::StreamInstance;
/// use rim_geom::{Point, SoaPoints};
///
/// // Three collinear nodes, each with its nearest-neighbor distance as
/// // radius: the middle node is covered by both ends.
/// let pts = SoaPoints::from_points(&[
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(2.1, 0.0),
/// ]);
/// let inst = StreamInstance::with_nn_radii(pts);
/// assert_eq!(inst.interference_counts(), vec![1, 2, 0]);
/// assert_eq!(inst.max_interference(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StreamInstance {
    grid: SoaGrid,
    /// Radius of the node at bucket position `k` (`SILENT` if it does
    /// not transmit) — aligned with the grid columns so the kernel's
    /// sender loop is one sequential sweep.
    radii: Vec<f64>,
}

impl StreamInstance {
    /// Builds a streaming instance carrying an existing topology's
    /// radius assignment. Nodes with no neighbors are marked silent and
    /// contribute nothing, exactly as in [`crate::interference_vector_naive`];
    /// the counts are therefore bit-identical to every other engine on
    /// the same topology.
    // rim-lint: allow(panic-freedom) — Topology node counts passed the u32 capacity guard at grid build
    pub fn from_topology(t: &Topology) -> Self {
        let _span = rim_obs::span("stream/build_from_topology");
        let points = SoaPoints::from_points(t.nodes().points());
        // Same cell hint as `receiver::build_index`: the median positive
        // radius balances bucket population against buckets per query.
        let mut positive: Vec<f64> = t.radii().iter().copied().filter(|&r| r > 0.0).collect();
        let hint = if positive.is_empty() {
            1.0
        } else {
            positive.sort_unstable_by(f64::total_cmp);
            positive[positive.len() / 2]
        };
        let grid = SoaGrid::build(&points, hint);
        let radii: Vec<f64> = (0..grid.len())
            .map(|k| {
                let u = grid.item(k);
                if t.graph().degree(u) == 0 {
                    SILENT
                } else {
                    t.radius(u)
                }
            })
            .collect();
        StreamInstance { grid, radii }
    }

    /// Builds a streaming instance straight from points, assigning every
    /// node its nearest-neighbor distance as transmission radius — the
    /// UDG-free path: no topology, no edge list, `O(n)` memory.
    ///
    /// A single-node (or empty) instance has no neighbors to reach, so
    /// all nodes are silent and every count is zero.
    pub fn with_nn_radii(points: SoaPoints) -> Self {
        match Self::try_with_nn_radii(points) {
            Ok(inst) => inst,
            // rim-lint: allow(panic-freedom) — the capacity assert replaces silent id truncation
            // rim-lint: allow(no-unwrap-in-lib) — intentional capacity assert, fallible twin is try_with_nn_radii
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`StreamInstance::with_nn_radii`]: errors when
    /// the store exceeds the grid's `u32` item capacity.
    pub fn try_with_nn_radii(points: SoaPoints) -> Result<Self, GridCapacityError> {
        let _span = rim_obs::span("stream/build_nn");
        let n = points.len();
        // Uniform-density cell hint: about one point per cell, so both
        // the NN search and the interference scatter touch O(1) buckets.
        let bbox = points.bbox();
        let hint = if bbox.is_empty() {
            1.0
        } else {
            let area = (bbox.width() * bbox.height()).max(f64::MIN_POSITIVE);
            let h = (area / n.max(1) as f64).sqrt();
            if h > 0.0 && h.is_finite() {
                h
            } else {
                1.0
            }
        };
        let grid = SoaGrid::try_build(&points, hint)?;
        let radii: Vec<f64> = (0..grid.len())
            .map(|k| grid.nearest_dist_at(k).unwrap_or(SILENT))
            .collect();
        Ok(StreamInstance { grid, radii })
    }

    /// Number of nodes in the instance.
    pub fn len(&self) -> usize {
        self.grid.len()
    }

    /// Returns `true` for an empty instance.
    pub fn is_empty(&self) -> bool {
        self.grid.is_empty()
    }

    /// Per-node interference `out[v] = I(v)` (original node order),
    /// computed sequentially. Bit-identical to
    /// [`crate::interference_vector_naive`] on the same instance.
    pub fn interference_counts(&self) -> Vec<u32> {
        let _span = rim_obs::span("interference/streaming");
        self.counts_with_chunks(1)
    }

    /// Per-node interference with the scatter sharded over `threads`
    /// workers, each accumulating into a private `u32` buffer merged at
    /// the barrier ([`rim_par::par_scatter_u32`]). The output is
    /// **thread-count-invariant**: every worker scatters a disjoint
    /// sender range and integer addition commutes, so the merged counts
    /// are bit-identical for any `threads >= 1`.
    pub fn interference_counts_sharded(&self, threads: usize) -> Vec<u32> {
        let _span = rim_obs::span("interference/streaming_sharded");
        self.counts_with_chunks(threads)
    }

    /// Shared scatter body: senders are swept in bucket order (the radius
    /// column and both coordinate columns stream sequentially), counts
    /// are accumulated *in bucket-position space* — so neighbor hits also
    /// write near each other — and un-permuted once at the end.
    // rim-lint: allow(panic-freedom) — `radii` and the scatter buffers all have length `n` = grid.len(), and positions/items stay below it
    fn counts_with_chunks(&self, chunks: usize) -> Vec<u32> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let chunks = chunks.min((n / STREAM_CHUNK).max(1));
        let pos_counts = par_scatter_u32(n, n, chunks, |range, buf| {
            let mut queries = 0u64;
            for k in range {
                let r = self.radii[k];
                if r < 0.0 {
                    continue; // silent node: transmits nothing
                }
                queries += 1;
                // Closed predicate at distance level, same as every other
                // engine: dist(u, v) <= r_u, evaluated inside the grid.
                self.grid.for_each_pos_in_disk(self.grid.point_at(k), r, |j| {
                    if j != k {
                        buf[j] += 1;
                    }
                });
            }
            // One counter update per chunk, not per query.
            rim_obs::counter_add("core.disk_queries", queries);
        });
        // Un-permute bucket positions back to original node ids.
        let mut out = vec![0u32; n];
        for (k, &c) in pos_counts.iter().enumerate() {
            out[self.grid.item(k)] = c;
        }
        out
    }

    /// Graph interference `I(G')` (Definition 3.2) of this instance,
    /// using the sharded kernel with the machine's thread count.
    pub fn max_interference(&self) -> u32 {
        self.interference_counts_sharded(num_threads())
            .into_iter()
            .max()
            .unwrap_or(0)
    }
}

/// The Θ(√(log n)) acceptance envelope for max receiver-centric
/// interference on **uniform-random instances with nearest-neighbor
/// radii**: returns `(lo, hi)` such that `lo <= max I(v) <= hi` holds
/// w.h.p. for n ≥ 10⁴.
///
/// Theory: Devroye–Morin (arXiv 1202.5945) prove max interference of
/// MST-style radius assignments on uniform points is Θ(√(log n)) w.h.p.;
/// the NN-radius assignment used by [`StreamInstance::with_nn_radii`] is
/// pointwise ≤ the MST radii (every MST links each node to something at
/// least as far as its nearest neighbor), and any graph containing the
/// nearest-neighbor links inherits the √(log n) lower-bound construction.
/// The constants are empirical, calibrated against release-mode runs at
/// n = 10⁵–10⁷ across seeds (observed max I(v) ≈ 1.2–1.3·√(ln n) in
/// that range) with a generous margin on both sides; the point of the
/// gate is to catch *asymptotic* regressions — a kernel bug that makes
/// interference Θ(1) or Θ(log n) lands far outside [lo, hi] at 10⁶⁺
/// nodes.
pub fn sqrt_log_envelope(n: usize) -> (f64, f64) {
    let s = (n.max(2) as f64).ln().sqrt();
    (0.8 * s, 6.0 * s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver::{interference_vector_naive, interference_vector_with, Engine};
    use rim_geom::Point;
    use rim_udg::{NodeSet, Topology};

    fn chain_topology() -> Topology {
        let xs = [0.0, 0.05, 1.0];
        Topology::from_pairs(NodeSet::on_line(&xs), &[(0, 1), (1, 2)])
    }

    #[test]
    fn from_topology_matches_naive_oracle() {
        let t = chain_topology();
        let inst = StreamInstance::from_topology(&t);
        let naive: Vec<u32> = interference_vector_naive(&t)
            .into_iter()
            .map(|c| c as u32)
            .collect();
        assert_eq!(inst.interference_counts(), naive);
        assert_eq!(inst.len(), 3);
        assert!(!inst.is_empty());
    }

    #[test]
    fn silent_nodes_contribute_nothing() {
        // Two linked nodes plus one isolated node: the isolated node is
        // covered but transmits nothing.
        let ns = NodeSet::on_line(&[0.0, 0.4, 0.5]);
        let t = Topology::from_pairs(ns, &[(0, 1)]);
        let inst = StreamInstance::from_topology(&t);
        assert_eq!(inst.interference_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn coincident_zero_radius_links_count() {
        let ns = NodeSet::new(vec![Point::ORIGIN, Point::ORIGIN, Point::ORIGIN]);
        let t = Topology::from_pairs(ns, &[(0, 1)]);
        let inst = StreamInstance::from_topology(&t);
        assert_eq!(inst.interference_counts(), vec![1, 1, 2]);
    }

    #[test]
    fn sharded_is_thread_count_invariant() {
        let pts: Vec<Point> = (0..640)
            .map(|i| Point::new((i % 32) as f64 * 0.21, (i / 32) as f64 * 0.17))
            .collect();
        let inst = StreamInstance::with_nn_radii(SoaPoints::from_points(&pts));
        let reference = inst.interference_counts();
        for threads in 1..=8 {
            assert_eq!(
                inst.interference_counts_sharded(threads),
                reference,
                "threads={threads}"
            );
        }
        assert_eq!(
            inst.max_interference(),
            reference.iter().copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn streaming_engine_agrees_with_indexed() {
        let pts: Vec<Point> = (0..300)
            .map(|i| {
                let a = i as f64 * 0.7;
                Point::new(a.sin() * 3.0 + a * 0.01, a.cos() * 3.0)
            })
            .collect();
        let t = rim_udg::radius::induced_topology(&NodeSet::new(pts), &vec![0.5; 300]);
        let inst = StreamInstance::from_topology(&t);
        let indexed = interference_vector_with(&t, Engine::Indexed);
        let got: Vec<usize> = inst.interference_counts().into_iter().map(|c| c as usize).collect();
        assert_eq!(got, indexed);
    }

    #[test]
    fn nn_radii_empty_and_singleton() {
        let empty = StreamInstance::with_nn_radii(SoaPoints::new());
        assert!(empty.is_empty());
        assert_eq!(empty.interference_counts(), Vec::<u32>::new());
        assert_eq!(empty.max_interference(), 0);
        let one = StreamInstance::with_nn_radii(SoaPoints::from_points(&[Point::ORIGIN]));
        assert_eq!(one.interference_counts(), vec![0]);
    }

    #[test]
    fn envelope_is_sane() {
        let (lo, hi) = sqrt_log_envelope(100_000);
        assert!(lo > 1.0 && hi > lo);
        let (lo6, hi6) = sqrt_log_envelope(1_000_000);
        assert!(lo6 > lo && hi6 > hi, "envelope grows with n");
    }
}
