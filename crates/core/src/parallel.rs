//! Data parallelism — re-exported from the shared [`rim_par`] executor.
//!
//! The chunked scoped-thread scatter executor originally lived here;
//! once the topology-construction pipeline and the bench sweeps needed
//! the same primitives it was hoisted into the `rim-par` crate. This
//! module stays as the long-standing `rim_core::parallel::…` path so the
//! interference kernels (and external callers) keep compiling unchanged.

pub use rim_par::{num_threads, par_map_ranges, par_scatter_u32};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexported_executor_works() {
        let sums = par_map_ranges(100, 4, |r| r.sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        assert!(num_threads() >= 1);
    }
}
