//! Dependency-free data parallelism on `std::thread::scope`.
//!
//! The workspace is hermetic — no rayon — so the batch interference
//! kernels split their index ranges by hand. [`par_map_ranges`] is the
//! `par_chunks`-style splitter they share: it carves `0..n` into
//! contiguous ranges, runs one scoped thread per range, and returns the
//! per-range results in order. Scoped threads let the closure borrow the
//! topology and spatial index by reference, so parallelism adds no
//! copies.

use std::ops::Range;

/// Number of worker threads worth spawning on this machine; at least 1.
///
/// `std::thread::available_parallelism` fails only in exotic sandboxes,
/// where falling back to sequential execution is the right behaviour.
pub fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1)
}

/// Splits `0..n` into `chunks` contiguous ranges (the first `n % chunks`
/// ranges are one element longer) and runs `work` on each range in its
/// own scoped thread, returning results in range order.
///
/// With `chunks <= 1` (or `n == 0`) the work runs inline on the calling
/// thread — the sequential path stays allocation- and thread-free. A
/// panic in any worker is resumed on the caller, as a plain sequential
/// loop would.
pub fn par_map_ranges<R, F>(n: usize, chunks: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let chunks = chunks.clamp(1, n.max(1));
    if chunks == 1 {
        return vec![work(0..n)];
    }
    let base = n / chunks;
    let extra = n % chunks;
    let bounds: Vec<Range<usize>> = (0..chunks)
        .scan(0usize, |lo, i| {
            let len = base + usize::from(i < extra);
            let r = *lo..*lo + len;
            *lo += len;
            Some(r)
        })
        .collect();
    let workref = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = bounds
            .into_iter()
            .map(|r| s.spawn(move || workref(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_the_range_exactly_once() {
        for n in [0usize, 1, 7, 64, 1000] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let ranges = par_map_ranges(n, chunks, |r| r);
                let mut seen = vec![false; n];
                for r in ranges {
                    for i in r {
                        assert!(!seen[i], "n={n} chunks={chunks} i={i} visited twice");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} chunks={chunks}");
            }
        }
    }

    #[test]
    fn results_arrive_in_range_order() {
        let sums = par_map_ranges(100, 4, |r| r.sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        assert_eq!(sums, vec![300, 925, 1550, 2175]);
    }

    #[test]
    fn sequential_fallback_matches() {
        let seq = par_map_ranges(10, 1, |r| r.collect::<Vec<_>>());
        assert_eq!(seq, vec![(0..10).collect::<Vec<_>>()]);
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }
}
