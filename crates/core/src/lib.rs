//! `rim-core` — the paper's primary contribution: a **receiver-centric,
//! robust interference model** for wireless ad-hoc networks.
//!
//! Von Rickenbach, Schmid, Wattenhofer and Zollinger (IPDPS 2005) define
//! the interference experienced by a node `v` under a topology `G'` as the
//! number of *other* nodes whose transmission disks cover `v`:
//!
//! ```text
//! I(v) = |{ u ∈ V \ {v} : v ∈ D(u, r_u) }|        (Definition 3.1)
//! I(G') = max_{v ∈ V} I(v)                        (Definition 3.2)
//! ```
//!
//! where `r_u` is the distance from `u` to its farthest neighbor in `G'`.
//! Two properties distinguish this measure from the earlier
//! *sender-centric* link-coverage measure of Burkhart et al. (MobiHoc
//! 2004), which is also implemented here for comparison:
//!
//! 1. it counts interference **where collisions happen** — at receivers;
//! 2. it is **robust**: adding one node increases any other node's
//!    interference by at most one ([`robustness`]).
//!
//! Module map:
//!
//! * [`receiver`] — Definitions 3.1/3.2 (naive oracle plus indexed and
//!   parallel engines behind [`receiver::Engine`]),
//! * [`stream`] — the UDG-free streaming kernel in structure-of-arrays
//!   layout for 10⁶–10⁷-node instances, with the Θ(√(log n))
//!   statistical envelope for uniform instances,
//! * [`parallel`] — the scoped-thread range splitter the engines share,
//! * [`physical`] — SINR physical-layer glue (`rim-phys` re-exports and
//!   the disk-limit adapter behind the physical engines),
//! * [`sender`] — the link-coverage measure of \[2\] for comparison,
//! * [`dynamic`] — incrementally maintained interference under link
//!   insertions/removals,
//! * [`gathering`] — directed data-gathering trees, the sensor-network
//!   setting the model originated in (reference \[4\]),
//! * [`robustness`] — add/remove-node interference deltas (Figure 1),
//! * [`optimal`] — exact minimum-interference connected topologies by
//!   branch-and-bound over radius assignments,
//! * [`analysis`] — interference summaries used by the experiments.

#![forbid(unsafe_code)]

// Node ids double as indices throughout this workspace; indexed loops
// over `0..n` mirror the paper's notation and often touch several arrays.
#![allow(clippy::needless_range_loop)]

/// Interference summaries and sanity bounds for experiment reporting.
pub mod analysis;
/// Incrementally maintained interference under link insertions/removals.
pub mod dynamic;
/// Data-gathering trees — the setting the interference model came from.
pub mod gathering;
/// Exact minimum-interference connected topologies (branch and bound).
pub mod optimal;
/// Dependency-free data parallelism on `std::thread::scope`.
pub mod parallel;
/// Physical-layer (SINR) model glue: `rim-phys` re-exports plus the
/// disk-limit adapter behind the physical engines.
pub mod physical;
/// The receiver-centric interference measure (Definitions 3.1 and 3.2).
pub mod receiver;
/// Streaming million-node interference kernel (UDG-free, SoA layout).
pub mod stream;
/// Robustness of the interference measure under node arrival/departure.
pub mod robustness;
/// The sender-centric link-coverage measure of Burkhart et al. (MobiHoc 2004).
pub mod sender;

pub use analysis::InterferenceSummary;
pub use optimal::{min_interference_topology, OptimalResult, SolverLimits};
pub use dynamic::{DynState, DynamicInterference};
pub use receiver::{
    graph_interference, graph_interference_with, interference_at, interference_vector,
    interference_vector_naive, interference_vector_with, Engine,
};
pub use sender::{edge_coverage, sender_graph_interference};
pub use stream::{sqrt_log_envelope, StreamInstance};
