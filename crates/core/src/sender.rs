//! The sender-centric link-coverage interference measure of Burkhart et
//! al. (MobiHoc 2004) — reference \[2\] of the paper.
//!
//! That model charges interference to *links*: communication over an edge
//! `{u, v}` is assumed to happen at power just sufficient to bridge the
//! link in both directions, affecting every node within distance `|uv|`
//! of either endpoint. The measure of a topology is the worst link:
//!
//! ```text
//! Cov(u, v) = |{ w ∈ V : w ∈ D(u, |uv|) ∪ D(v, |uv|) }|
//! I_sender(G') = max_{{u,v} ∈ E'} Cov(u, v)
//! ```
//!
//! Endpoints themselves are counted as covered (they trivially are), so
//! the maximum possible value is `n` — the convention matching the
//! paper's Figure 1 narrative, where a single added node pushes the
//! measure from a small constant up to "the total number of network
//! nodes". The introduction's criticism, which `rim` exists to quantify,
//! is twofold: coverage is charged at the *sender* side, and the measure
//! can jump by `Θ(n)` when one node is added ([`crate::robustness`]).

use rim_udg::Topology;

/// Coverage of the (hypothetical or actual) link `{u, v}`: how many nodes
/// lie in `D(u, |uv|) ∪ D(v, |uv|)`, endpoints included.
pub fn edge_coverage(t: &Topology, u: usize, v: usize) -> usize {
    assert!(u != v, "coverage of a self-loop");
    let nodes = t.nodes();
    let d_sq = nodes.dist_sq(u, v);
    let pu = nodes.pos(u);
    let pv = nodes.pos(v);
    let mut count = 0;
    for w in 0..nodes.len() {
        let pw = nodes.pos(w);
        if pw.dist_sq(&pu) <= d_sq || pw.dist_sq(&pv) <= d_sq {
            count += 1;
        }
    }
    count
}

/// Sender-centric interference of a topology: the maximum link coverage,
/// or 0 for edgeless topologies.
pub fn sender_graph_interference(t: &Topology) -> usize {
    t.edges()
        .iter()
        .map(|e| edge_coverage(t, e.u, e.v))
        .max()
        .unwrap_or(0)
}

/// Per-edge coverages, in the order of [`Topology::edges`].
pub fn coverage_vector(t: &Topology) -> Vec<usize> {
    t.edges()
        .iter()
        .map(|e| edge_coverage(t, e.u, e.v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::NodeSet;

    #[test]
    fn isolated_pair_covers_itself() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 1.0]), &[(0, 1)]);
        assert_eq!(edge_coverage(&t, 0, 1), 2);
        assert_eq!(sender_graph_interference(&t), 2);
    }

    #[test]
    fn long_link_over_cluster_covers_everything() {
        // Three clustered nodes plus a far one; the long link's disks
        // sweep up the whole cluster.
        let t = Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.01, 0.02, 1.0]),
            &[(0, 1), (1, 2), (2, 3)],
        );
        assert_eq!(edge_coverage(&t, 2, 3), 4);
        assert_eq!(sender_graph_interference(&t), 4);
        // The short link at the left only covers the cluster.
        assert_eq!(edge_coverage(&t, 0, 1), 3); // 0, 1, 2 (0.01 ring reaches 0.02)
    }

    #[test]
    fn coverage_counts_union_not_sum() {
        // Nodes covered by both endpoint disks are counted once.
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.5, 1.0]), &[(0, 2), (0, 1)]);
        // Link {0,2}: both disks have radius 1 and jointly cover all 3.
        assert_eq!(edge_coverage(&t, 0, 2), 3);
    }

    #[test]
    fn edgeless_topology_has_zero() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.1]));
        assert_eq!(sender_graph_interference(&t), 0);
        assert!(coverage_vector(&t).is_empty());
    }

    #[test]
    fn coverage_vector_matches_edges_order() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.3, 0.9]), &[(1, 2), (0, 1)]);
        let edges = t.edges();
        let cov = coverage_vector(&t);
        assert_eq!(cov.len(), edges.len());
        for (e, &c) in edges.iter().zip(&cov) {
            assert_eq!(c, edge_coverage(&t, e.u, e.v));
        }
    }
}
