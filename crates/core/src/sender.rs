//! The sender-centric link-coverage interference measure of Burkhart et
//! al. (MobiHoc 2004) — reference \[2\] of the paper.
//!
//! That model charges interference to *links*: communication over an edge
//! `{u, v}` is assumed to happen at power just sufficient to bridge the
//! link in both directions, affecting every node within distance `|uv|`
//! of either endpoint. The measure of a topology is the worst link:
//!
//! ```text
//! Cov(u, v) = |{ w ∈ V : w ∈ D(u, |uv|) ∪ D(v, |uv|) }|
//! I_sender(G') = max_{{u,v} ∈ E'} Cov(u, v)
//! ```
//!
//! Endpoints themselves are counted as covered (they trivially are), so
//! the maximum possible value is `n` — the convention matching the
//! paper's Figure 1 narrative, where a single added node pushes the
//! measure from a small constant up to "the total number of network
//! nodes". The introduction's criticism, which `rim` exists to quantify,
//! is twofold: coverage is charged at the *sender* side, and the measure
//! can jump by `Θ(n)` when one node is added ([`crate::robustness`]).

use rim_geom::SpatialIndex;
use rim_udg::Topology;

/// Coverage of the (hypothetical or actual) link `{u, v}`: how many nodes
/// lie in `D(u, |uv|) ∪ D(v, |uv|)`, endpoints included.
///
/// This is the `O(n)` per-edge reference; [`coverage_vector`] batches the
/// same computation over all edges through a spatial index and is tested
/// to agree exactly.
pub fn edge_coverage(t: &Topology, u: usize, v: usize) -> usize {
    assert!(u != v, "coverage of a self-loop");
    let nodes = t.nodes();
    let d_sq = nodes.dist_sq(u, v);
    let pu = nodes.pos(u);
    let pv = nodes.pos(v);
    let mut count = 0;
    for w in 0..nodes.len() {
        let pw = nodes.pos(w);
        if pw.dist_sq(&pu) <= d_sq || pw.dist_sq(&pv) <= d_sq {
            count += 1;
        }
    }
    count
}

/// Sender-centric interference of a topology: the maximum link coverage,
/// or 0 for edgeless topologies. Computed through the batched
/// [`coverage_vector`].
pub fn sender_graph_interference(t: &Topology) -> usize {
    coverage_vector(t).into_iter().max().unwrap_or(0)
}

/// Per-edge coverages, in the order of [`Topology::edges`], batched over
/// a spatial index.
///
/// This model's membership predicate compares *squared* distances against
/// the squared link length (both sides raw `dist_sq` values — a
/// consistent-power comparison). The index answers *distance-level*
/// closed-disk queries, but those are a guaranteed superset of the
/// squared predicate: correctly-rounded `sqrt` is monotone, so
/// `dist_sq(w,u) <= d_sq` implies `dist(w,u) <= d` with `d =
/// sqrt(d_sq)`. Each query therefore only *filters candidates*; the
/// original squared predicate of [`edge_coverage`] decides membership,
/// keeping the two bit-identical on every input (boundary ties
/// included). Expected cost `O(n + Σ_e Cov(e))` instead of `O(n·m)`.
pub fn coverage_vector(t: &Topology) -> Vec<usize> {
    let edges = t.edges();
    if edges.is_empty() {
        return Vec::new();
    }
    let nodes = t.nodes();
    // Cell hint: the median link length — the dominant query radius.
    let mut lens: Vec<f64> = edges.iter().map(|e| e.weight).collect();
    lens.sort_unstable_by(f64::total_cmp);
    let hint = lens[lens.len() / 2];
    let index = SpatialIndex::build(nodes.points(), hint);
    // Stamp-based dedup of the two-disk union, reused across edges.
    let mut stamp = vec![0u32; nodes.len()];
    let mut version = 0u32;
    edges
        .iter()
        .map(|e| {
            version += 1;
            let pu = nodes.pos(e.u);
            let pv = nodes.pos(e.v);
            let d_sq = nodes.dist_sq(e.u, e.v);
            let d = nodes.dist(e.u, e.v);
            let mut count = 0usize;
            for center in [pu, pv] {
                index.for_each_in_disk(center, d, |w| {
                    if stamp[w] == version {
                        return; // already counted for this edge
                    }
                    let pw = nodes.pos(w);
                    // The model's exact predicate, on squares.
                    if pw.dist_sq(&pu) <= d_sq || pw.dist_sq(&pv) <= d_sq {
                        stamp[w] = version;
                        count += 1;
                    }
                });
            }
            count
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rim_udg::NodeSet;

    #[test]
    fn isolated_pair_covers_itself() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 1.0]), &[(0, 1)]);
        assert_eq!(edge_coverage(&t, 0, 1), 2);
        assert_eq!(sender_graph_interference(&t), 2);
    }

    #[test]
    fn long_link_over_cluster_covers_everything() {
        // Three clustered nodes plus a far one; the long link's disks
        // sweep up the whole cluster.
        let t = Topology::from_pairs(
            NodeSet::on_line(&[0.0, 0.01, 0.02, 1.0]),
            &[(0, 1), (1, 2), (2, 3)],
        );
        assert_eq!(edge_coverage(&t, 2, 3), 4);
        assert_eq!(sender_graph_interference(&t), 4);
        // The short link at the left only covers the cluster.
        assert_eq!(edge_coverage(&t, 0, 1), 3); // 0, 1, 2 (0.01 ring reaches 0.02)
    }

    #[test]
    fn coverage_counts_union_not_sum() {
        // Nodes covered by both endpoint disks are counted once.
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.5, 1.0]), &[(0, 2), (0, 1)]);
        // Link {0,2}: both disks have radius 1 and jointly cover all 3.
        assert_eq!(edge_coverage(&t, 0, 2), 3);
    }

    #[test]
    fn edgeless_topology_has_zero() {
        let t = Topology::empty(NodeSet::on_line(&[0.0, 0.1]));
        assert_eq!(sender_graph_interference(&t), 0);
        assert!(coverage_vector(&t).is_empty());
    }

    #[test]
    fn batched_coverage_matches_per_edge_oracle() {
        // Pseudo-random clustered instance with duplicate coordinates —
        // boundary ties at d = 0 and shared positions stress the stamp
        // dedup and the candidate-filter superset argument.
        let mut state = 99u64;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let mut pts = Vec::new();
        for _ in 0..40 {
            pts.push(rim_geom::Point::new(rnd() * 2.0, rnd() * 2.0));
        }
        pts.push(pts[3]); // exact duplicate
        pts.push(pts[7]);
        let n = pts.len();
        let mut pairs = Vec::new();
        for i in 0..n {
            pairs.push((i, (i * 7 + 1) % n));
        }
        pairs.retain(|&(a, b)| a != b);
        pairs.sort_unstable_by_key(|&(a, b)| (a.min(b), a.max(b)));
        pairs.dedup_by_key(|&mut (a, b)| (a.min(b), a.max(b)));
        let t = Topology::from_pairs(NodeSet::new(pts), &pairs);
        let batched = coverage_vector(&t);
        let edges = t.edges();
        for (e, &c) in edges.iter().zip(&batched) {
            assert_eq!(c, edge_coverage(&t, e.u, e.v), "edge {:?}", e.pair());
        }
        assert_eq!(
            sender_graph_interference(&t),
            batched.iter().copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn coverage_vector_matches_edges_order() {
        let t = Topology::from_pairs(NodeSet::on_line(&[0.0, 0.3, 0.9]), &[(1, 2), (0, 1)]);
        let edges = t.edges();
        let cov = coverage_vector(&t);
        assert_eq!(cov.len(), edges.len());
        for (e, &c) in edges.iter().zip(&cov) {
            assert_eq!(c, edge_coverage(&t, e.u, e.v));
        }
    }
}
