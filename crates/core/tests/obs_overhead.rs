//! Overhead guard for the observability layer's *disabled* path.
//!
//! Library crates call `rim_obs` hooks unconditionally; this test holds
//! the cost of those hooks — while no sink is installed — under 5% of
//! the 4096-node indexed interference kernel. The kernel issues one
//! `rim_obs::active()` check per disk query (inside
//! `SpatialIndex::for_each_in_disk`) plus a constant number of span and
//! counter calls per batch, so the emulation below reproduces exactly
//! that call pattern and times it against the kernel itself.
//!
//! CRUCIAL: nothing in this test binary may call
//! `rim_obs::install_recorder()` — the whole point is measuring the
//! uninstalled fast path.

use rim_core::receiver::{interference_vector_with, Engine};
use rim_geom::Point;
use rim_udg::{udg::unit_disk_graph_with_range, NodeSet, Topology};
use std::hint::black_box;
use std::time::{Duration, Instant};

const N: usize = 4096;

/// Deterministic uniform instance: 4096 nodes in a 16x16 square with a
/// connection range giving an average UDG degree around 12.
fn uniform_4096() -> Topology {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut rnd = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let pts: Vec<Point> = (0..N).map(|_| Point::new(rnd() * 16.0, rnd() * 16.0)).collect();
    let ns = NodeSet::new(pts);
    let graph = unit_disk_graph_with_range(&ns, 0.5);
    Topology::from_graph(ns, graph)
}

fn median_of<F: FnMut() -> Duration>(samples: usize, mut f: F) -> Duration {
    let mut times: Vec<Duration> = (0..samples).map(|_| f()).collect();
    times.sort_unstable();
    times[times.len() / 2]
}

#[test]
fn disabled_obs_path_stays_under_five_percent_of_the_kernel() {
    assert!(
        !rim_obs::active(),
        "this test must run without an installed sink; something in this \
         binary enabled collection"
    );
    let t = uniform_4096();

    // Warm up caches and verify the kernel actually does work.
    let warm = interference_vector_with(&t, Engine::Indexed);
    assert!(warm.iter().copied().max().unwrap_or(0) > 0);

    let kernel = median_of(5, || {
        let start = Instant::now();
        black_box(interference_vector_with(black_box(&t), Engine::Indexed));
        start.elapsed()
    });

    // The kernel's per-run obs footprint while disabled: one engine span,
    // one index-build span, one counter update, and one `active()` branch
    // per disk query (N transmitters).
    let obs = median_of(5, || {
        let start = Instant::now();
        let _engine_span = rim_obs::span(black_box("interference/indexed"));
        let _index_span = rim_obs::span(black_box("interference/index_build"));
        for _ in 0..N {
            black_box(rim_obs::active());
        }
        rim_obs::counter_add(black_box("core.disk_queries"), black_box(N as u64));
        black_box(start.elapsed())
    });

    assert!(
        obs * 20 <= kernel,
        "disabled obs path too expensive: obs={obs:?} vs kernel={kernel:?} \
         (limit: 5%)"
    );
}
