//! Differential suite for the streaming (SoA, UDG-free) interference
//! kernel: [`StreamInstance`] must agree *exactly* — bit for bit, not
//! within a tolerance — with [`interference_vector_naive`], the `O(n²)`
//! oracle transcribing Definition 3.1, across the same five adversarial
//! instance families the indexed engines are pinned by
//! (`differential.rs`), and the sharded accumulator variant must be
//! invariant in the worker count.
//!
//! The family generators are deliberately duplicated from
//! `differential.rs` rather than shared: each suite stays a
//! self-contained witness, so a refactor of one cannot silently weaken
//! the other.

use rim_core::receiver::{interference_vector_naive, interference_vector_with, Engine};
use rim_core::{sqrt_log_envelope, StreamInstance};
use rim_geom::{Point, SoaPoints};
use rim_rng::prop::check;
use rim_rng::{prop_ensure, SmallRng};
use rim_udg::{NodeSet, Topology};

/// Random edge selection over `n` nodes: up to `2n` draws, deduped.
fn arb_pairs(rng: &mut SmallRng, n: usize) -> Vec<(usize, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    if n < 2 {
        return pairs;
    }
    for _ in 0..rng.gen_range(0usize..2 * n) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            pairs.push((a, b));
        }
    }
    pairs
}

fn topology_from(rng: &mut SmallRng, points: Vec<Point>) -> Topology {
    let n = points.len();
    let pairs = arb_pairs(rng, n);
    Topology::from_pairs(NodeSet::new(points), &pairs)
}

/// Uniform points in a square.
fn gen_uniform(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..48);
    let side = rng.gen_range(0.5f64..4.0);
    let pts = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    topology_from(rng, pts)
}

/// A few tight clusters far apart: grid buckets are wildly uneven.
fn gen_clustered(rng: &mut SmallRng) -> Topology {
    let clusters = rng.gen_range(1usize..5);
    let per = rng.gen_range(2usize..10);
    let mut pts = Vec::new();
    for _ in 0..clusters {
        let cx = rng.gen_range(0.0f64..20.0);
        let cy = rng.gen_range(0.0f64..20.0);
        for _ in 0..per {
            pts.push(Point::new(
                cx + rng.gen_range(-0.05f64..0.05),
                cy + rng.gen_range(-0.05f64..0.05),
            ));
        }
    }
    topology_from(rng, pts)
}

/// Exponentially growing gaps (the paper's Figure 7 instance shape):
/// radii spread over many orders of magnitude.
fn gen_exponential_chain(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(3usize..24);
    let scale = 2f64.powi(-(rng.gen_range(0u32..30) as i32));
    let pts: Vec<Point> = (0..n)
        .map(|i| Point::on_line((2f64.powi(i as i32) - 1.0) * scale))
        .collect();
    let mut pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for (a, b) in arb_pairs(rng, n) {
        if b != a + 1 && a != b + 1 {
            pairs.push((a, b));
        }
    }
    Topology::from_pairs(NodeSet::new(pts), &pairs)
}

/// Collinear points: a degenerate (height-zero) bounding box.
fn gen_collinear(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..32);
    let pts = (0..n)
        .map(|_| Point::on_line(rng.gen_range(0.0f64..3.0)))
        .collect();
    topology_from(rng, pts)
}

/// Duplicate coordinates: coincident nodes, zero-length links, exact
/// boundary ties at `d = 0`.
fn gen_duplicates(rng: &mut SmallRng) -> Topology {
    let distinct = rng.gen_range(1usize..8);
    let sites: Vec<Point> = (0..distinct)
        .map(|_| Point::new(rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..1.0)))
        .collect();
    let n = rng.gen_range(distinct..3 * distinct + 2);
    let pts = (0..n).map(|i| sites[i % distinct]).collect();
    topology_from(rng, pts)
}

/// The streaming kernel (and its sharded variant) must reproduce the
/// naive oracle exactly on any topology.
fn streaming_matches_oracle(t: &Topology) -> Result<(), String> {
    let oracle = interference_vector_naive(t);
    let inst = StreamInstance::from_topology(t);
    let got: Vec<usize> = inst.interference_counts().into_iter().map(|c| c as usize).collect();
    prop_ensure!(
        got == oracle,
        "streaming kernel diverged from the naive oracle\n  got:    {:?}\n  oracle: {:?}",
        got,
        oracle
    );
    // Sharded accumulation must not depend on the worker count.
    for threads in 1..=8 {
        let sharded: Vec<usize> = inst
            .interference_counts_sharded(threads)
            .into_iter()
            .map(|c| c as usize)
            .collect();
        prop_ensure!(
            sharded == oracle,
            "sharded kernel with {threads} worker(s) diverged\n  got:    {:?}\n  oracle: {:?}",
            sharded,
            oracle
        );
    }
    Ok(())
}

#[test]
fn streaming_differential_uniform() {
    check("streaming_differential_uniform", 128, gen_uniform, streaming_matches_oracle);
}

#[test]
fn streaming_differential_clustered() {
    check("streaming_differential_clustered", 128, gen_clustered, streaming_matches_oracle);
}

#[test]
fn streaming_differential_exponential_chain() {
    check(
        "streaming_differential_exponential_chain",
        128,
        gen_exponential_chain,
        streaming_matches_oracle,
    );
}

#[test]
fn streaming_differential_collinear() {
    check("streaming_differential_collinear", 128, gen_collinear, streaming_matches_oracle);
}

#[test]
fn streaming_differential_duplicate_coordinates() {
    check(
        "streaming_differential_duplicate_coordinates",
        128,
        gen_duplicates,
        streaming_matches_oracle,
    );
}

/// Deterministic large instances right at the suite's size bound: the
/// property generators stay small for iteration count, so this pins the
/// kernels against the oracle at `n = 2048` explicitly.
#[test]
fn streaming_matches_oracle_at_2048() {
    for seed in [1u64, 2, 3] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 2048;
        let side = (n as f64).sqrt();
        let pts: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
            .collect();
        let t = topology_from(&mut rng, pts);
        streaming_matches_oracle(&t).unwrap();
    }
}

/// Mid-scale agreement with the indexed engine, where the `O(n²)` oracle
/// is no longer practical: the streaming path and the grid-indexed path
/// must still be integer-identical on the same topology.
#[test]
fn streaming_agrees_with_indexed_at_scale() {
    let mut rng = SmallRng::seed_from_u64(9);
    let n = 20_000;
    let side = (n as f64).sqrt();
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    // A sparse chain plus random shortcuts keeps radii local, so the
    // indexed engine's disk queries stay cheap in debug builds.
    let mut pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    let mut extra = std::collections::HashSet::new();
    for _ in 0..n / 4 {
        let a = rng.gen_range(0..n - 2);
        if extra.insert(a) {
            pairs.push((a, a + 2));
        }
    }
    let t = Topology::from_pairs(NodeSet::new(pts), &pairs);

    let indexed = interference_vector_with(&t, Engine::Indexed);
    let streaming: Vec<usize> = StreamInstance::from_topology(&t)
        .interference_counts()
        .into_iter()
        .map(|c| c as usize)
        .collect();
    assert_eq!(streaming, indexed);
}

/// The UDG-free nearest-neighbor path at statistical scale: on a uniform
/// unit-density instance the maximum receiver-centric interference must
/// sit inside the Θ(√(log n)) envelope (Devroye–Morin), and the count
/// must not depend on the worker count.
#[test]
fn nn_radii_gate_at_1e5() {
    let n: usize = 100_000;
    let side = (n as f64).sqrt();
    let mut rng = SmallRng::seed_from_u64(42);
    let mut soa = SoaPoints::with_capacity(n);
    for _ in 0..n {
        soa.push(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
    }
    let inst = StreamInstance::with_nn_radii(soa);
    let counts = inst.interference_counts_sharded(4);
    let max = counts.iter().copied().max().unwrap_or(0);
    let (lo, hi) = sqrt_log_envelope(n);
    assert!(
        f64::from(max) >= lo && f64::from(max) <= hi,
        "max I = {max} outside [{lo:.2}, {hi:.2}] at n = {n}"
    );
    assert_eq!(counts, inst.interference_counts_sharded(1), "sharding changed the counts");
}
