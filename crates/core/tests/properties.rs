//! Property-based tests for the interference model, driven by the
//! in-repo seeded harness (`rim_rng::prop`).

#![allow(clippy::needless_range_loop)] // node-id-indexed loops by design
use rim_core::receiver::{graph_interference, interference_vector, interference_vector_naive};
use rim_core::robustness::contribution_of;
use rim_core::sender::{edge_coverage, sender_graph_interference};
use rim_geom::Point;
use rim_rng::prop::check_default;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// Random node set plus a random forest-ish edge selection over it.
fn arb_topology(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..16);
    let coords: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0f64..2.0), rng.gen_range(0.0f64..2.0)))
        .collect();
    let ns = NodeSet::new(coords);
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for _ in 0..rng.gen_range(0usize..2 * n) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            pairs.push((a, b));
        }
    }
    Topology::from_pairs(ns, &pairs)
}

#[test]
fn fast_interference_matches_naive() {
    check_default("fast_interference_matches_naive", arb_topology, |t| {
        prop_ensure_eq!(interference_vector(t), interference_vector_naive(t));
        Ok(())
    });
}

#[test]
fn degree_lower_bounds_interference() {
    check_default("degree_lower_bounds_interference", arb_topology, |t| {
        let iv = interference_vector(t);
        for v in 0..t.num_nodes() {
            prop_ensure!(
                iv[v] >= t.graph().degree(v),
                "I({v}) = {} < deg = {}",
                iv[v],
                t.graph().degree(v)
            );
        }
        Ok(())
    });
}

#[test]
fn interference_bounded_by_n_minus_one() {
    check_default("interference_bounded_by_n_minus_one", arb_topology, |t| {
        prop_ensure!(graph_interference(t) < t.num_nodes());
        Ok(())
    });
}

#[test]
fn per_node_contribution_is_binary() {
    check_default("per_node_contribution_is_binary", arb_topology, |t| {
        for u in 0..t.num_nodes() {
            let c = contribution_of(t, u);
            prop_ensure_eq!(c[u], 0);
            for &x in &c {
                prop_ensure!(x <= 1);
            }
        }
        Ok(())
    });
}

#[test]
fn radii_equal_farthest_neighbor() {
    check_default("radii_equal_farthest_neighbor", arb_topology, |t| {
        for u in 0..t.num_nodes() {
            let far = t
                .graph()
                .neighbors(u)
                .map(|v| t.nodes().dist(u, v))
                .fold(0.0f64, f64::max);
            prop_ensure!(
                t.radius(u).total_cmp(&far).is_eq(),
                "radius({u}) = {} != farthest neighbor {}",
                t.radius(u),
                far
            );
        }
        Ok(())
    });
}

#[test]
fn sender_measure_covers_at_least_endpoints() {
    check_default("sender_measure_covers_at_least_endpoints", arb_topology, |t| {
        for e in t.edges() {
            let cov = edge_coverage(t, e.u, e.v);
            prop_ensure!(cov >= 2, "coverage below endpoint count");
            prop_ensure!(cov <= t.num_nodes());
        }
        if t.num_edges() > 0 {
            prop_ensure!(sender_graph_interference(t) >= 2);
        } else {
            prop_ensure_eq!(sender_graph_interference(t), 0);
        }
        Ok(())
    });
}

/// The structural robustness fact: freezing the existing topology and
/// adding a node with ANY radius raises each old node's interference
/// by at most 1.
#[test]
fn frozen_arrival_adds_at_most_one() {
    check_default(
        "frozen_arrival_adds_at_most_one",
        |rng| {
            let t = arb_topology(rng);
            let p = Point::new(rng.gen_range(0.0f64..2.0), rng.gen_range(0.0f64..2.0));
            let link: bool = rng.gen();
            (t, p, link)
        },
        |(t, p, link)| {
            let before = interference_vector(t);
            let old_n = t.num_nodes();
            let grown = t.nodes().with_node(*p);
            let mut pairs: Vec<(usize, usize)> = t.edges().iter().map(|e| e.pair()).collect();
            if *link {
                // Attach the newcomer to node 0 — node 0's radius may grow,
                // but the *newcomer's* contribution stays <= 1; restrict the
                // comparison to nodes whose radii were untouched, i.e. check
                // only the newcomer's contribution directly.
                pairs.push((0, old_n));
            }
            let after = Topology::from_pairs(grown, &pairs);
            let contribution = contribution_of(&after, old_n);
            for v in 0..old_n {
                prop_ensure!(contribution[v] <= 1);
            }
            if !link {
                // Newcomer isolated: nothing changes at all for old nodes.
                let after_iv = interference_vector(&after);
                for v in 0..old_n {
                    prop_ensure_eq!(after_iv[v], before[v]);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn udg_max_degree_upper_bounds_subgraph_interference() {
    check_default(
        "udg_max_degree_upper_bounds_subgraph_interference",
        arb_topology,
        |t| {
            // Only meaningful when the topology is a subgraph of the UDG
            // (edges within unit range).
            if t.respects_range(1.0) {
                let udg = unit_disk_graph(t.nodes());
                prop_ensure!(graph_interference(t) <= udg.max_degree());
            }
            Ok(())
        },
    );
}

/// Named regression promoted from the retired `proptest` seed corpus
/// (`properties.proptest-regressions`): two nodes joined by a single
/// link whose radius *exactly* equals their distance. The closed
/// predicate of Definition 3.1 must count each endpoint as covering the
/// other — the fast grid path and the naive path must agree on this
/// boundary tie, which is exactly where distance-level vs squared-level
/// comparison discipline matters.
#[test]
fn regression_boundary_tie_two_node_link() {
    let t = Topology::from_pairs(
        NodeSet::new(vec![
            Point::new(0.0, 0.4343472666960413),
            Point::new(0.8824422616998076, 0.0),
        ]),
        &[(0, 1)],
    );
    // The link length is the shared radius of both endpoints.
    let d = t.nodes().dist(0, 1);
    assert!(t.radius(0).total_cmp(&d).is_eq());
    assert_eq!(
        interference_vector(&t),
        interference_vector_naive(&t),
        "fast and naive disagree on a boundary tie"
    );
    assert_eq!(interference_vector(&t), vec![1, 1]);
    assert_eq!(graph_interference(&t), 1);
}
