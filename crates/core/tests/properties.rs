//! Property-based tests for the interference model.

#![allow(clippy::needless_range_loop)] // node-id-indexed loops by design
use proptest::prelude::*;
use rim_core::receiver::{graph_interference, interference_vector, interference_vector_naive};
use rim_core::robustness::contribution_of;
use rim_core::sender::{edge_coverage, sender_graph_interference};
use rim_geom::Point;
use rim_udg::udg::unit_disk_graph;
use rim_udg::{NodeSet, Topology};

/// Random node set plus a random forest-ish edge selection over it.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (2usize..16).prop_flat_map(|n| {
        let pts = proptest::collection::vec((0.0f64..2.0, 0.0f64..2.0), n..=n);
        let edge_picks = proptest::collection::vec((0..n, 0..n), 0..2 * n);
        (pts, edge_picks).prop_map(|(coords, picks)| {
            let ns = NodeSet::new(coords.into_iter().map(|(x, y)| Point::new(x, y)).collect());
            let mut seen = std::collections::HashSet::new();
            let mut pairs = Vec::new();
            for (a, b) in picks {
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    pairs.push((a, b));
                }
            }
            Topology::from_pairs(ns, &pairs)
        })
    })
}

proptest! {
    #[test]
    fn fast_interference_matches_naive(t in arb_topology()) {
        prop_assert_eq!(interference_vector(&t), interference_vector_naive(&t));
    }

    #[test]
    fn degree_lower_bounds_interference(t in arb_topology()) {
        let iv = interference_vector(&t);
        for v in 0..t.num_nodes() {
            prop_assert!(iv[v] >= t.graph().degree(v),
                "I({v}) = {} < deg = {}", iv[v], t.graph().degree(v));
        }
    }

    #[test]
    fn interference_bounded_by_n_minus_one(t in arb_topology()) {
        let n = t.num_nodes();
        prop_assert!(graph_interference(&t) < n);
    }

    #[test]
    fn per_node_contribution_is_binary(t in arb_topology()) {
        for u in 0..t.num_nodes() {
            let c = contribution_of(&t, u);
            prop_assert_eq!(c[u], 0, "no self-interference");
            for &x in &c {
                prop_assert!(x <= 1);
            }
        }
    }

    #[test]
    fn radii_equal_farthest_neighbor(t in arb_topology()) {
        for u in 0..t.num_nodes() {
            let far = t.graph()
                .neighbors(u)
                .map(|v| t.nodes().dist(u, v))
                .fold(0.0f64, f64::max);
            prop_assert_eq!(t.radius(u), far);
        }
    }

    #[test]
    fn sender_measure_covers_at_least_endpoints(t in arb_topology()) {
        for e in t.edges() {
            let cov = edge_coverage(&t, e.u, e.v);
            prop_assert!(cov >= 2, "coverage below endpoint count");
            prop_assert!(cov <= t.num_nodes());
        }
        if t.num_edges() > 0 {
            prop_assert!(sender_graph_interference(&t) >= 2);
        } else {
            prop_assert_eq!(sender_graph_interference(&t), 0);
        }
    }

    /// The structural robustness fact: freezing the existing topology and
    /// adding a node with ANY radius raises each old node's interference
    /// by at most 1.
    #[test]
    fn frozen_arrival_adds_at_most_one(t in arb_topology(), x in 0.0f64..2.0, y in 0.0f64..2.0, link in proptest::bool::ANY) {
        let before = interference_vector(&t);
        let old_n = t.num_nodes();
        let grown = t.nodes().with_node(Point::new(x, y));
        let mut pairs: Vec<(usize, usize)> = t.edges().iter().map(|e| e.pair()).collect();
        if link {
            // Attach the newcomer to node 0 — node 0's radius may grow,
            // but the *newcomer's* contribution stays <= 1; restrict the
            // comparison to nodes whose radii were untouched, i.e. check
            // only the newcomer's contribution directly.
            pairs.push((0, old_n));
        }
        let after = Topology::from_pairs(grown, &pairs);
        let contribution = contribution_of(&after, old_n);
        for v in 0..old_n {
            prop_assert!(contribution[v] <= 1);
        }
        if !link {
            // Newcomer isolated: nothing changes at all for old nodes.
            let after_iv = interference_vector(&after);
            for v in 0..old_n {
                prop_assert_eq!(after_iv[v], before[v]);
            }
        }
    }

    #[test]
    fn udg_max_degree_upper_bounds_subgraph_interference(t in arb_topology()) {
        // Only meaningful when the topology is a subgraph of the UDG
        // (edges within unit range).
        if t.respects_range(1.0) {
            let udg = unit_disk_graph(t.nodes());
            prop_assert!(graph_interference(&t) <= udg.max_degree());
        }
    }
}
