//! Robustness properties of the receiver-centric measure (the paper's
//! Section 3 motivation): a single node arriving — with any radius that
//! leaves existing radii untouched — changes every *other* node's
//! interference by at most 1, and its departure undoes the change
//! symmetrically. Checked for both the batch engines and the
//! incremental [`DynamicInterference`] structure.

use rim_core::receiver::{interference_vector_naive, interference_vector_with, Engine};
use rim_core::DynamicInterference;
use rim_geom::Point;
use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};
use rim_udg::{NodeSet, Topology};

/// Random topology plus one arrival point.
fn gen_instance(rng: &mut SmallRng) -> (Topology, Point) {
    let n = rng.gen_range(2usize..20);
    let pts: Vec<Point> = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0f64..2.0), rng.gen_range(0.0f64..2.0)))
        .collect();
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for _ in 0..rng.gen_range(1usize..2 * n) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            pairs.push((a, b));
        }
    }
    let t = Topology::from_pairs(NodeSet::new(pts), &pairs);
    let p = Point::new(rng.gen_range(0.0f64..2.0), rng.gen_range(0.0f64..2.0));
    (t, p)
}

/// A transmitter of `t` whose disk already covers `p`, if any. Linking
/// the newcomer to such a node cannot grow that node's radius, so the
/// *only* disk the arrival adds to the plane is the newcomer's own.
fn covering_anchor(t: &Topology, p: Point) -> Option<usize> {
    (0..t.num_nodes()).find(|&w| {
        t.graph().degree(w) > 0 && t.nodes().pos(w).dist(&p) <= t.radius(w)
    })
}

/// Batch form: adding one node (anchored so no existing radius changes)
/// raises every old node's interference by at most 1, under every
/// engine.
#[test]
fn batch_arrival_changes_each_count_by_at_most_one() {
    check(
        "batch_arrival_changes_each_count_by_at_most_one",
        256,
        gen_instance,
        |(t, p)| {
            let before = interference_vector_naive(t);
            let old_n = t.num_nodes();
            let grown_nodes = t.nodes().with_node(*p);
            let mut pairs: Vec<(usize, usize)> = t.edges().iter().map(|e| e.pair()).collect();
            let anchored = covering_anchor(t, *p);
            if let Some(w) = anchored {
                pairs.push((w, old_n));
            }
            let grown = Topology::from_pairs(grown_nodes, &pairs);
            for engine in [Engine::Naive, Engine::Indexed, Engine::Parallel] {
                let after = interference_vector_with(&grown, engine);
                for v in 0..old_n {
                    let delta = after[v] as isize - before[v] as isize;
                    prop_ensure!(
                        (0..=1).contains(&delta),
                        "engine {}: I({v}) moved by {delta} on arrival",
                        engine.name()
                    );
                }
                if anchored.is_none() {
                    // Isolated newcomer: transmits nothing, changes nothing.
                    for v in 0..old_n {
                        prop_ensure_eq!(after[v], before[v]);
                    }
                }
            }
            Ok(())
        },
    );
}

/// Incremental form: the same bound through [`DynamicInterference`],
/// plus the symmetric statement — detaching the newcomer again restores
/// every old node's count exactly (departure is bounded by the same 1).
#[test]
fn incremental_arrival_and_departure_are_bounded() {
    check(
        "incremental_arrival_and_departure_are_bounded",
        256,
        gen_instance,
        |(t, p)| {
            let mut d = DynamicInterference::from_topology(t);
            let old_n = t.num_nodes();
            let before: Vec<usize> = (0..old_n).map(|v| d.interference_at(v)).collect();

            // Arrival of an isolated node: no old count moves at all.
            let v = d.insert_node(*p);
            for w in 0..old_n {
                prop_ensure_eq!(d.interference_at(w), before[w]);
            }

            // Anchor it to a transmitter already covering it (if any):
            // no existing radius changes, so each old count moves by at
            // most the newcomer's own contribution — exactly 0 or 1.
            let Some(anchor) = covering_anchor(t, *p) else {
                return Ok(());
            };
            prop_ensure!(d.insert_edge(v, anchor));
            let mut after = Vec::with_capacity(old_n);
            for w in 0..old_n {
                let now = d.interference_at(w);
                let delta = now as isize - before[w] as isize;
                prop_ensure!(
                    (0..=1).contains(&delta),
                    "I({w}) moved by {delta} on incremental arrival"
                );
                after.push(now);
            }

            // Departure (detach): bounded by the same 1 per node, and
            // since the newcomer's disk was the only change, the counts
            // return to their pre-arrival values exactly.
            prop_ensure!(d.remove_edge(v, anchor));
            for w in 0..old_n {
                let now = d.interference_at(w);
                let delta = after[w] as isize - now as isize;
                prop_ensure!(
                    (0..=1).contains(&delta),
                    "I({w}) moved by {delta} on incremental departure"
                );
                prop_ensure_eq!(now, before[w]);
            }
            Ok(())
        },
    );
}
