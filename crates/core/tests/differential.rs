//! Differential-oracle suite: every fast interference engine is tested
//! for *exact* agreement with [`interference_vector_naive`] — the
//! permanent `O(n²)` oracle that transcribes Definition 3.1 literally —
//! across adversarial instance families, and the incremental structure
//! is replayed edit-by-edit against from-scratch recomputation.
//!
//! The families are chosen to stress different failure modes of the
//! spatial index: uniform (the grid's home turf), clustered (uneven
//! bucket population), exponential chains (radius spreads that defeat
//! any uniform cell and force the kd-tree), collinear instances
//! (degenerate bounding boxes), and duplicate coordinates (zero-length
//! links, boundary ties at `d = 0`).

use rim_core::receiver::{
    graph_interference_with, interference_vector_naive, interference_vector_with, Engine,
};
use rim_core::DynamicInterference;
use rim_geom::Point;
use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};
use rim_udg::{NodeSet, Topology};

/// Random edge selection over `n` nodes: up to `2n` draws, deduped.
fn arb_pairs(rng: &mut SmallRng, n: usize) -> Vec<(usize, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    if n < 2 {
        return pairs;
    }
    for _ in 0..rng.gen_range(0usize..2 * n) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            pairs.push((a, b));
        }
    }
    pairs
}

fn topology_from(rng: &mut SmallRng, points: Vec<Point>) -> Topology {
    let n = points.len();
    let pairs = arb_pairs(rng, n);
    Topology::from_pairs(NodeSet::new(points), &pairs)
}

/// Uniform points in a square.
fn gen_uniform(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..48);
    let side = rng.gen_range(0.5f64..4.0);
    let pts = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    topology_from(rng, pts)
}

/// A few tight clusters far apart: grid buckets are wildly uneven.
fn gen_clustered(rng: &mut SmallRng) -> Topology {
    let clusters = rng.gen_range(1usize..5);
    let per = rng.gen_range(2usize..10);
    let mut pts = Vec::new();
    for _ in 0..clusters {
        let cx = rng.gen_range(0.0f64..20.0);
        let cy = rng.gen_range(0.0f64..20.0);
        for _ in 0..per {
            pts.push(Point::new(
                cx + rng.gen_range(-0.05f64..0.05),
                cy + rng.gen_range(-0.05f64..0.05),
            ));
        }
    }
    topology_from(rng, pts)
}

/// Exponentially growing gaps (the paper's Figure 7 instance shape):
/// radii spread over many orders of magnitude, the kd-tree trigger.
fn gen_exponential_chain(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(3usize..24);
    let scale = 2f64.powi(-(rng.gen_range(0u32..30) as i32));
    let pts: Vec<Point> = (0..n)
        .map(|i| Point::on_line((2f64.powi(i as i32) - 1.0) * scale))
        .collect();
    // Always include the linear chain so the huge radii actually occur,
    // then add random extra links.
    let mut pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for (a, b) in arb_pairs(rng, n) {
        if b != a + 1 && a != b + 1 {
            pairs.push((a, b));
        }
    }
    Topology::from_pairs(NodeSet::new(pts), &pairs)
}

/// Collinear points: a degenerate (height-zero) bounding box.
fn gen_collinear(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..32);
    let pts = (0..n)
        .map(|_| Point::on_line(rng.gen_range(0.0f64..3.0)))
        .collect();
    topology_from(rng, pts)
}

/// Duplicate coordinates: coincident nodes, zero-length links, exact
/// boundary ties at `d = 0`.
fn gen_duplicates(rng: &mut SmallRng) -> Topology {
    let distinct = rng.gen_range(1usize..8);
    let sites: Vec<Point> = (0..distinct)
        .map(|_| Point::new(rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..1.0)))
        .collect();
    let n = rng.gen_range(distinct..3 * distinct + 2);
    let pts = (0..n).map(|i| sites[i % distinct]).collect();
    topology_from(rng, pts)
}

/// Asserts that every engine reproduces the oracle exactly — not within
/// a tolerance: the counts are integers and the predicate is identical.
fn engines_match_oracle(t: &Topology) -> Result<(), String> {
    let oracle = interference_vector_naive(t);
    for engine in [Engine::Indexed, Engine::Parallel, Engine::Auto] {
        let got = interference_vector_with(t, engine);
        prop_ensure!(
            got == oracle,
            "engine {} diverged from the naive oracle\n  got:    {:?}\n  oracle: {:?}",
            engine.name(),
            got,
            oracle
        );
        prop_ensure_eq!(
            graph_interference_with(t, engine),
            oracle.iter().copied().max().unwrap_or(0)
        );
    }
    Ok(())
}

#[test]
fn differential_uniform() {
    check("differential_uniform", 256, gen_uniform, engines_match_oracle);
}

#[test]
fn differential_clustered() {
    check("differential_clustered", 256, gen_clustered, engines_match_oracle);
}

#[test]
fn differential_exponential_chain() {
    check(
        "differential_exponential_chain",
        256,
        gen_exponential_chain,
        engines_match_oracle,
    );
}

#[test]
fn differential_collinear() {
    check("differential_collinear", 256, gen_collinear, engines_match_oracle);
}

#[test]
fn differential_duplicate_coordinates() {
    check(
        "differential_duplicate_coordinates",
        256,
        gen_duplicates,
        engines_match_oracle,
    );
}

/// One edit of a dynamic-interference trace.
#[derive(Debug, Clone)]
enum Edit {
    InsertEdge(usize, usize),
    RemoveEdge(usize, usize),
    InsertNode(Point),
    RemoveNode(usize),
}

/// A random edit trace over a random starting instance. Node indices in
/// edge edits address the *current* node count, which only grows.
fn gen_trace(rng: &mut SmallRng) -> (Topology, Vec<Edit>) {
    let t = gen_uniform(rng);
    let mut n = t.num_nodes();
    let steps = rng.gen_range(1usize..24);
    let mut edits = Vec::with_capacity(steps);
    for _ in 0..steps {
        match rng.gen_range(0u32..5) {
            0 => {
                edits.push(Edit::InsertNode(Point::new(
                    rng.gen_range(0.0f64..4.0),
                    rng.gen_range(0.0f64..4.0),
                )));
                n += 1;
            }
            1 => {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if a != b {
                    edits.push(Edit::RemoveEdge(a, b));
                }
            }
            // Departures address any slot, dead or alive — replays must
            // prove the second removal is a clean no-op.
            2 => edits.push(Edit::RemoveNode(rng.gen_range(0..n))),
            _ => {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if a != b {
                    edits.push(Edit::InsertEdge(a, b));
                }
            }
        }
    }
    (t, edits)
}

/// Replays a full edit trace through [`DynamicInterference`], comparing
/// the incrementally maintained counts against a from-scratch batch
/// recomputation (both the naive oracle and the indexed engine) after
/// *every* step — the incremental structure may never drift, not even
/// transiently.
#[test]
fn differential_incremental_trace_replay() {
    check(
        "differential_incremental_trace_replay",
        192,
        gen_trace,
        |(t0, edits)| {
            let mut d = DynamicInterference::from_topology(t0);
            for (step, edit) in edits.iter().enumerate() {
                match *edit {
                    Edit::InsertEdge(u, v) => {
                        let had = d.graph().has_edge(u, v);
                        let legal = d.is_live(u) && d.is_live(v);
                        prop_ensure_eq!(d.insert_edge(u, v), !had && legal);
                    }
                    Edit::RemoveEdge(u, v) => {
                        let had = d.graph().has_edge(u, v);
                        prop_ensure_eq!(d.remove_edge(u, v), had);
                    }
                    Edit::InsertNode(p) => {
                        let v = d.insert_node(p);
                        prop_ensure_eq!(v, d.len() - 1);
                    }
                    Edit::RemoveNode(v) => {
                        let was_live = d.is_live(v);
                        prop_ensure_eq!(d.remove_node(v), was_live);
                        prop_ensure!(!d.is_live(v));
                    }
                }
                // Compare over the *live* view: a tombstoned slot is
                // invisible to the maintained structure, but a batch
                // kernel run over the raw slot set would still charge
                // coverage to it.
                let (rebuilt, slots) = d.live_topology();
                let oracle = interference_vector_naive(&rebuilt);
                let got: Vec<usize> = slots.iter().map(|&v| d.interference_at(v)).collect();
                prop_ensure!(
                    got == oracle,
                    "after step {step} ({edit:?}) incremental counts diverged\n  \
                     got:    {got:?}\n  oracle: {oracle:?}"
                );
                prop_ensure_eq!(
                    interference_vector_with(&rebuilt, Engine::Indexed),
                    oracle
                );
                prop_ensure_eq!(
                    d.graph_interference(),
                    oracle.iter().copied().max().unwrap_or(0)
                );
            }
            Ok(())
        },
    );
}
