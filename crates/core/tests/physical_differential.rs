//! Differential layer pinning the physical (SINR) engines to the disk
//! model — the headline contract of the `rim-phys` crate.
//!
//! Three families of assertions, each over the same adversarial
//! instance families as `differential.rs` (uniform, clustered,
//! exponential chain, collinear, duplicate coordinates):
//!
//! 1. **Disk limit.** Under [`PhysModel::disk_equivalent`] (`α = 2`,
//!    `θ = 1 mW`, `p_u = r_u²`, zero shadowing) both physical engines
//!    produce *exactly* the disk model's interference vector — integer
//!    equality against `interference_vector_naive`, no tolerance.
//! 2. **Engine agreement.** Under a *generic* SINR parameterisation
//!    (α = 3, random powers, shadowing) the indexed SINR kernel equals
//!    the naive `O(n²)` oracle bit-for-bit (`f64::to_bits`), and the
//!    indexed coverage kernel equals its naive twin.
//! 3. **Determinism.** The same shadowing seed yields byte-identical
//!    models and interference sums; a different seed moves them.

use rim_core::physical::{
    coverage_vector_indexed, coverage_vector_naive, sinr_interference_naive,
    sinr_interference_with, PhysModel, PhysParams,
};
use rim_core::receiver::{interference_vector_naive, interference_vector_with, Engine};
use rim_geom::Point;
use rim_rng::prop::check;
use rim_rng::{prop_ensure, prop_ensure_eq, SmallRng};
use rim_udg::{NodeSet, Topology};

/// Random edge selection over `n` nodes: up to `2n` draws, deduped.
fn arb_pairs(rng: &mut SmallRng, n: usize) -> Vec<(usize, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    if n < 2 {
        return pairs;
    }
    for _ in 0..rng.gen_range(0usize..2 * n) {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            pairs.push((a, b));
        }
    }
    pairs
}

fn topology_from(rng: &mut SmallRng, points: Vec<Point>) -> Topology {
    let n = points.len();
    let pairs = arb_pairs(rng, n);
    Topology::from_pairs(NodeSet::new(points), &pairs)
}

/// Uniform points in a square.
fn gen_uniform(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..48);
    let side = rng.gen_range(0.5f64..4.0);
    let pts = (0..n)
        .map(|_| Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side)))
        .collect();
    topology_from(rng, pts)
}

/// A few tight clusters far apart: grid buckets are wildly uneven.
fn gen_clustered(rng: &mut SmallRng) -> Topology {
    let clusters = rng.gen_range(1usize..5);
    let per = rng.gen_range(2usize..10);
    let mut pts = Vec::new();
    for _ in 0..clusters {
        let cx = rng.gen_range(0.0f64..20.0);
        let cy = rng.gen_range(0.0f64..20.0);
        for _ in 0..per {
            pts.push(Point::new(
                cx + rng.gen_range(-0.05f64..0.05),
                cy + rng.gen_range(-0.05f64..0.05),
            ));
        }
    }
    topology_from(rng, pts)
}

/// Exponentially growing gaps: radii (hence powers `r²`) spread over
/// many orders of magnitude — the stress case for the `√(r·r) = r`
/// exactness claim and for the index cell heuristic alike.
fn gen_exponential_chain(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(3usize..24);
    let scale = 2f64.powi(-(rng.gen_range(0u32..30) as i32));
    let pts: Vec<Point> = (0..n)
        .map(|i| Point::on_line((2f64.powi(i as i32) - 1.0) * scale))
        .collect();
    let mut pairs: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    for (a, b) in arb_pairs(rng, n) {
        if b != a + 1 && a != b + 1 {
            pairs.push((a, b));
        }
    }
    Topology::from_pairs(NodeSet::new(pts), &pairs)
}

/// Collinear points: a degenerate (height-zero) bounding box.
fn gen_collinear(rng: &mut SmallRng) -> Topology {
    let n = rng.gen_range(2usize..32);
    let pts = (0..n)
        .map(|_| Point::on_line(rng.gen_range(0.0f64..3.0)))
        .collect();
    topology_from(rng, pts)
}

/// Duplicate coordinates: coincident nodes, zero-length links, exact
/// boundary ties at `d = 0` (where the near-field clamp takes over).
fn gen_duplicates(rng: &mut SmallRng) -> Topology {
    let distinct = rng.gen_range(1usize..8);
    let sites: Vec<Point> = (0..distinct)
        .map(|_| Point::new(rng.gen_range(0.0f64..1.0), rng.gen_range(0.0f64..1.0)))
        .collect();
    let n = rng.gen_range(distinct..3 * distinct + 2);
    let pts = (0..n).map(|i| sites[i % distinct]).collect();
    topology_from(rng, pts)
}

/// A generic (non-disk-limit) SINR instantiation: α = 3, random powers
/// over several orders of magnitude, optional shadowing.
fn generic_model(rng: &mut SmallRng, t: &Topology) -> PhysModel {
    let sigma_db = if rng.gen_bool(0.5) { rng.gen_range(0.5f64..8.0) } else { 0.0 };
    let params = PhysParams {
        sigma_db,
        shadow_seed: rng.gen_range(0u64..1 << 32),
        ..PhysParams::default()
    };
    let power_mw: Vec<f64> = (0..t.num_nodes())
        .map(|_| 10f64.powf(rng.gen_range(-2.0f64..2.0)))
        .collect();
    PhysModel::with_params(t, params, &power_mw)
}

/// The disk-limit contract plus indexed-vs-naive SINR agreement, checked
/// on one instance.
fn physical_matches_disk(t: &Topology) -> Result<(), String> {
    // 1. Disk limit: both physical engines equal the disk oracle exactly.
    let oracle = interference_vector_naive(t);
    for engine in [Engine::PhysicalNaive, Engine::PhysicalIndexed] {
        let got = interference_vector_with(t, engine);
        prop_ensure!(
            got == oracle,
            "engine {} diverged from the disk oracle\n  got:    {:?}\n  oracle: {:?}",
            engine.name(),
            got,
            oracle
        );
    }
    // 2. Generic parameterisation: indexed kernels equal the naive ones
    //    bit-for-bit.
    let mut seed_rng = SmallRng::seed_from_u64(oracle.len() as u64 ^ 0x5eed);
    let m = generic_model(&mut seed_rng, t);
    let index = rim_core::physical::build_phys_index(&m);
    prop_ensure_eq!(coverage_vector_naive(&m), coverage_vector_indexed(&m, &index));
    let naive_bits: Vec<u64> = sinr_interference_naive(&m).iter().map(|x| x.to_bits()).collect();
    let fast_bits: Vec<u64> =
        rim_core::physical::sinr_interference_indexed(&m, &index).iter().map(|x| x.to_bits()).collect();
    prop_ensure!(
        naive_bits == fast_bits,
        "indexed SINR sums diverged from the naive oracle (bitwise)"
    );
    Ok(())
}

#[test]
fn physical_differential_uniform() {
    check("physical_differential_uniform", 192, gen_uniform, physical_matches_disk);
}

#[test]
fn physical_differential_clustered() {
    check("physical_differential_clustered", 192, gen_clustered, physical_matches_disk);
}

#[test]
fn physical_differential_exponential_chain() {
    check(
        "physical_differential_exponential_chain",
        192,
        gen_exponential_chain,
        physical_matches_disk,
    );
}

#[test]
fn physical_differential_collinear() {
    check("physical_differential_collinear", 192, gen_collinear, physical_matches_disk);
}

#[test]
fn physical_differential_duplicate_coordinates() {
    check(
        "physical_differential_duplicate_coordinates",
        192,
        gen_duplicates,
        physical_matches_disk,
    );
}

/// Seeded shadowing is bit-reproducible: the same seed yields identical
/// powers, radii and interference sums; a different seed moves at least
/// one power on instances with positive power and σ.
#[test]
fn physical_differential_shadowing_determinism() {
    check(
        "physical_differential_shadowing_determinism",
        128,
        |rng| {
            let t = gen_uniform(rng);
            let seed = rng.gen_range(0u64..1 << 48);
            (t, seed)
        },
        |(t, seed)| {
            let params = PhysParams { sigma_db: 6.0, shadow_seed: *seed, ..PhysParams::default() };
            let power_mw = vec![1.0; t.num_nodes()];
            let a = PhysModel::with_params(t, params, &power_mw);
            let b = PhysModel::with_params(t, params, &power_mw);
            for u in 0..t.num_nodes() {
                prop_ensure_eq!(a.power_mw(u).to_bits(), b.power_mw(u).to_bits());
                prop_ensure_eq!(a.coverage_radius(u).to_bits(), b.coverage_radius(u).to_bits());
                prop_ensure_eq!(a.cutoff(u).to_bits(), b.cutoff(u).to_bits());
            }
            let sums_a: Vec<u64> =
                sinr_interference_with(&a, true).iter().map(|x| x.to_bits()).collect();
            let sums_b: Vec<u64> =
                sinr_interference_with(&b, false).iter().map(|x| x.to_bits()).collect();
            prop_ensure!(
                sums_a == sums_b,
                "same seed must give byte-identical SINR sums, across engines"
            );
            let other = PhysParams { shadow_seed: seed.wrapping_add(1), ..params };
            let c = PhysModel::with_params(t, other, &power_mw);
            prop_ensure!(
                t.num_nodes() == 0
                    || (0..t.num_nodes()).any(|u| a.power_mw(u).to_bits() != c.power_mw(u).to_bits()),
                "a different seed must draw a different fading landscape"
            );
            Ok(())
        },
    );
}
